package core

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/sqlmini"
)

// countingStore wraps a LocalStore and counts SELECTs against the
// drivers/permission tables — the queries the catalog is supposed to
// eliminate from steady-state grants. GenerationStore is satisfied via
// the embedded LocalStore.
type countingStore struct {
	*LocalStore
	schemaReads atomic.Int64
}

func (c *countingStore) isSchemaRead(sql string) bool {
	trimmed := strings.TrimSpace(sql)
	return strings.HasPrefix(trimmed, "SELECT") &&
		(strings.Contains(sql, DriversTable) || strings.Contains(sql, PermissionTable))
}

func (c *countingStore) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	if c.isSchemaRead(sql) {
		c.schemaReads.Add(1)
	}
	return c.LocalStore.Exec(sql, args...)
}

// Prepare wraps the embedded store's handle so statements the server
// routes through its prepared-handle cache still count — otherwise the
// zero-SQL steady-state assertions would pass vacuously.
func (c *countingStore) Prepare(sql string) (Stmt, error) {
	h, err := c.LocalStore.Prepare(sql)
	if err != nil {
		return nil, err
	}
	if !c.isSchemaRead(sql) {
		return h, nil
	}
	return countingSchemaStmt{c: c, h: h}, nil
}

type countingSchemaStmt struct {
	c *countingStore
	h Stmt
}

func (s countingSchemaStmt) Exec(args ...any) (*sqlmini.Result, error) {
	s.c.schemaReads.Add(1)
	return s.h.Exec(args...)
}

func (s countingSchemaStmt) Close() error { return s.h.Close() }

func newCatalogServer(t *testing.T, opts ...ServerOption) (*Server, *countingStore) {
	t.Helper()
	st := &countingStore{LocalStore: NewLocalStore(sqlmini.NewDB())}
	srv, err := NewServer("catalog-test", st, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return srv, st
}

func catalogImage(ver dbver.Version, pkgs ...string) *driverimg.Image {
	return &driverimg.Image{
		Manifest: driverimg.Manifest{
			Kind:     "dbms-native",
			API:      dbver.APIOf("JDBC", 3, 0),
			Version:  ver,
			Packages: pkgs,
		},
		Payload: []byte("driver body"),
	}
}

func catalogRequest() Request {
	return Request{
		Database:       "prod",
		User:           "app",
		API:            dbver.APIOf("JDBC", 3, -1),
		ClientPlatform: dbver.PlatformLinuxAMD64,
		ClientID:       "test-client",
	}
}

// TestCatalogInvalidationAdmin: every admin mutation — add, permission
// insert, permission expiry, revoke-for-renewals, delete — must be
// visible to the very next grant; no stale offers.
func TestCatalogInvalidationAdmin(t *testing.T) {
	srv, _ := newCatalogServer(t)
	req := catalogRequest()

	if _, perr := srv.match(req); perr == nil || perr.Code != ErrCodeNoDriver {
		t.Fatalf("empty schema should yield NO_DRIVER, got %v", perr)
	}

	id1, err := srv.AddDriver(catalogImage(dbver.V(1, 0, 0)), dbver.FormatImage)
	if err != nil {
		t.Fatal(err)
	}
	g, perr := srv.match(req)
	if perr != nil || g.driverID != id1 {
		t.Fatalf("after AddDriver: g=%+v perr=%v", g, perr)
	}

	id2, err := srv.AddDriver(catalogImage(dbver.V(2, 0, 0)), dbver.FormatImage)
	if err != nil {
		t.Fatal(err)
	}
	if g, perr = srv.match(req); perr != nil || g.driverID != id2 {
		t.Fatalf("newer driver must win immediately: g=%+v perr=%v", g, perr)
	}

	// A permission pinning the old driver overrides preference matching.
	permID, err := srv.SetPermission(Permission{
		DriverID: id1, LeaseTime: time.Minute,
		RenewPolicy: RenewKeep, ExpirationPolicy: AfterClose, TransferMethod: TransferAny,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, perr = srv.match(req)
	if perr != nil || g.driverID != id1 || g.renew != RenewKeep || g.leaseTime != time.Minute {
		t.Fatalf("permission must apply immediately: g=%+v perr=%v", g, perr)
	}

	// Expiring it restores preference matching on the next grant.
	if err := srv.ExpirePermission(permID); err != nil {
		t.Fatal(err)
	}
	if g, perr = srv.match(req); perr != nil || g.driverID != id2 {
		t.Fatalf("expired permission must stop matching: g=%+v perr=%v", g, perr)
	}

	// RevokeDriverForRenewals flips permissions to REVOKE: a renewing
	// client is told to stop, a new client falls through.
	if _, err := srv.SetPermission(Permission{
		DriverID: id2, LeaseTime: time.Minute,
		RenewPolicy: RenewUpgrade, ExpirationPolicy: AfterCommit, TransferMethod: TransferAny,
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.RevokeDriverForRenewals(id2); err != nil {
		t.Fatal(err)
	}
	renewReq := req
	renewReq.LeaseID = 99 // any non-zero lease: the REVOKE row must match
	g, perr = srv.match(renewReq)
	if perr != nil || g.renew != RenewRevoke {
		t.Fatalf("revoked permission must reach renewals immediately: g=%+v perr=%v", g, perr)
	}
	g, perr = srv.match(req) // new client skips the REVOKE row
	if perr != nil || g.renew == RenewRevoke {
		t.Fatalf("new client must not get a REVOKE permission: g=%+v perr=%v", g, perr)
	}

	// Deleting a driver removes it (and its permissions) from offers.
	if err := srv.DeleteDriver(id2); err != nil {
		t.Fatal(err)
	}
	if g, perr = srv.match(req); perr != nil || g.driverID != id1 {
		t.Fatalf("deleted driver must vanish immediately: g=%+v perr=%v", g, perr)
	}
	if err := srv.DeleteDriver(id1); err != nil {
		t.Fatal(err)
	}
	if _, perr = srv.match(req); perr == nil || perr.Code != ErrCodeNoDriver {
		t.Fatalf("all drivers deleted: want NO_DRIVER, got %v", perr)
	}
}

// TestCatalogSharedStoreAcrossServers: two servers over one embedded DB
// (the replicated-embedded / TLS-frontend shape) must observe each
// other's admin mutations — the generation lives on the DB, not the
// server.
func TestCatalogSharedStoreAcrossServers(t *testing.T) {
	db := sqlmini.NewDB()
	a, err := NewServer("a", NewLocalStore(db))
	if err != nil {
		t.Fatal(err)
	}
	bSrv, err := NewServer("b", NewLocalStore(db))
	if err != nil {
		t.Fatal(err)
	}
	req := catalogRequest()

	id, err := a.AddDriver(catalogImage(dbver.V(1, 0, 0)), dbver.FormatImage)
	if err != nil {
		t.Fatal(err)
	}
	if g, perr := bSrv.match(req); perr != nil || g.driverID != id {
		t.Fatalf("server b must see server a's driver: %v", perr)
	}
	// Warm both catalogs, then mutate through a and re-check b.
	id2, err := a.AddDriver(catalogImage(dbver.V(2, 0, 0)), dbver.FormatImage)
	if err != nil {
		t.Fatal(err)
	}
	if g, perr := bSrv.match(req); perr != nil || g.driverID != id2 {
		t.Fatalf("server b served a stale catalog after a's insert: %v", perr)
	}
	if err := a.DeleteDriver(id2); err != nil {
		t.Fatal(err)
	}
	if g, perr := bSrv.match(req); perr != nil || g.driverID != id {
		t.Fatalf("server b served a deleted driver: %v", perr)
	}
}

// TestCatalogZeroSchemaSQLSteadyState is the ISSUE acceptance check:
// once the catalog is warm, DISCOVER-style matches and renewal-no-change
// grants run zero SELECTs against the drivers/permission tables.
func TestCatalogZeroSchemaSQLSteadyState(t *testing.T) {
	srv, st := newCatalogServer(t)
	req := catalogRequest()
	if _, err := srv.AddDriver(catalogImage(dbver.V(1, 0, 0)), dbver.FormatImage); err != nil {
		t.Fatal(err)
	}

	// Bootstrap grant: catalog load + blob materialization are allowed.
	offer, perr := srv.grant(req, false)
	if perr != nil {
		t.Fatal(perr)
	}

	before := st.schemaReads.Load()
	for i := 0; i < 25; i++ {
		if _, perr := srv.match(req); perr != nil { // the DISCOVER path
			t.Fatal(perr)
		}
	}
	renewReq := req
	renewReq.LeaseID = offer.LeaseID
	renewReq.CurrentChecksum = offer.DriverChecksum
	for i := 0; i < 25; i++ {
		o, perr := srv.grant(renewReq, false) // Table-4 renewal-no-change
		if perr != nil {
			t.Fatal(perr)
		}
		if o.HasDriver {
			t.Fatal("no-change renewal must not offer a transfer")
		}
	}
	if got := st.schemaReads.Load() - before; got != 0 {
		t.Fatalf("steady-state grants issued %d drivers/permission SELECTs, want 0", got)
	}
}

// TestCatalogAssemblyCache: the §5.4.1 assembly of a (driver, packages)
// shape is computed once; repeat grants are served from the cache
// without even materializing the base blob.
func TestCatalogAssemblyCache(t *testing.T) {
	ps := driverimg.NewPackageStore()
	ps.AddPackage("gis", []byte("gis-code"), map[string]string{"gis": "on"})
	srv, st := newCatalogServer(t, WithPackages(ps))
	if _, err := srv.AddDriver(catalogImage(dbver.V(1, 0, 0)), dbver.FormatImage); err != nil {
		t.Fatal(err)
	}
	req := catalogRequest()
	req.RequiredPackages = []string{"gis"}

	g1, perr := srv.match(req)
	if perr != nil {
		t.Fatal(perr)
	}
	before := st.schemaReads.Load()
	g2, perr := srv.match(req)
	if perr != nil {
		t.Fatal(perr)
	}
	if got := st.schemaReads.Load() - before; got != 0 {
		t.Fatalf("cached assembly still hit the store %d times", got)
	}
	if g1.checksum != g2.checksum || g2.blob == nil {
		t.Fatalf("cached assembly diverged: %q vs %q", g1.checksum, g2.checksum)
	}
	img, err := driverimg.Decode(g2.blob)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Manifest.HasPackage("gis") || img.Manifest.Options["gis"] != "on" {
		t.Fatalf("assembled manifest = %+v", img.Manifest)
	}

	// Re-registering a package must invalidate cached assemblies.
	ps.AddPackage("gis", []byte("gis-code-v2"), map[string]string{"gis": "on"})
	g3, perr := srv.match(req)
	if perr != nil {
		t.Fatal(perr)
	}
	if g3.checksum == g2.checksum {
		t.Fatal("stale assembly served after package re-registration")
	}
}

// TestCatalogLicenseModeLeaseFree: the license-mode single-lease check
// (§5.4.2) stays live under the catalog — lease churn is not cached.
func TestCatalogLicenseModeLeaseFree(t *testing.T) {
	srv, _ := newCatalogServer(t, WithLicenseMode())
	if _, err := srv.AddDriver(catalogImage(dbver.V(1, 0, 0)), dbver.FormatImage); err != nil {
		t.Fatal(err)
	}
	reqA := catalogRequest()
	reqA.ClientID = "client-a"
	offer, perr := srv.grant(reqA, false)
	if perr != nil {
		t.Fatal(perr)
	}

	reqB := catalogRequest()
	reqB.ClientID = "client-b"
	if _, perr := srv.match(reqB); perr == nil || perr.Code != ErrCodeNoDriver {
		t.Fatalf("license held: second client must get NO_DRIVER, got %v", perr)
	}
	// The holder itself renews fine (own lease excluded from the check).
	renew := reqA
	renew.LeaseID = offer.LeaseID
	renew.CurrentChecksum = offer.DriverChecksum
	if o, perr := srv.grant(renew, false); perr != nil || o.HasDriver {
		t.Fatalf("holder renewal failed: %v", perr)
	}
	// Releasing the lease frees the license for the very next grant.
	if err := srv.ReleaseLeaseByID(offer.LeaseID); err != nil {
		t.Fatal(err)
	}
	if _, perr := srv.match(reqB); perr != nil {
		t.Fatalf("released license must be grantable: %v", perr)
	}
}

// TestCatalogConcurrentGrantsDuringAdminChurn hammers match() from many
// goroutines while the admin API adds and deletes drivers; run under
// -race this covers the catalog swap, the generation checks, and the
// assembly cache. Every result must be a coherent offer or NO_DRIVER.
func TestCatalogConcurrentGrantsDuringAdminChurn(t *testing.T) {
	srv, _ := newCatalogServer(t)
	req := catalogRequest()
	baseID, err := srv.AddDriver(catalogImage(dbver.V(1, 0, 0)), dbver.FormatImage)
	if err != nil {
		t.Fatal(err)
	}

	const grantors = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, grantors)
	for i := 0; i < grantors; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g, perr := srv.match(req)
				switch {
				case perr == nil:
					if g.checksum == "" || g.size == 0 {
						errs <- "grant without checksum/size"
						return
					}
				case perr.Code == ErrCodeNoDriver:
					// acceptable mid-delete
				default:
					errs <- perr.Error()
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		id, err := srv.AddDriver(catalogImage(dbver.V(2, 0, i)), dbver.FormatImage)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.DeleteDriver(id); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if g, perr := srv.match(req); perr != nil || g.driverID != baseID {
		t.Fatalf("final state: g=%+v perr=%v", g, perr)
	}
}

// TestCatalogDeltaPermissionChurn: permission-only admin churn must not
// rebuild driver entries — they are carried over by pointer from the
// previous catalog, so no blob is rescanned or re-hashed.
func TestCatalogDeltaPermissionChurn(t *testing.T) {
	srv, _ := newCatalogServer(t)
	var ids []int64
	for i := 0; i < 3; i++ {
		id, err := srv.AddDriver(catalogImage(dbver.V(1, i, 0)), dbver.FormatImage)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	before, perr := srv.catalogSnapshot()
	if perr != nil {
		t.Fatal(perr)
	}
	if _, err := srv.SetPermission(Permission{DriverID: ids[0], LeaseTime: time.Minute}); err != nil {
		t.Fatal(err)
	}
	after, perr := srv.catalogSnapshot()
	if perr != nil {
		t.Fatal(perr)
	}
	if after == before {
		t.Fatal("permission insert must produce a new catalog snapshot")
	}
	if len(after.perms) != len(before.perms)+1 {
		t.Fatalf("perms = %d, want %d", len(after.perms), len(before.perms)+1)
	}
	for _, id := range ids {
		if after.byID[id] != before.byID[id] {
			t.Fatalf("driver %d entry was rebuilt on permission-only churn", id)
		}
	}
}

// TestCatalogDeltaDriverChurn: adding one driver re-hashes only the new
// blob; surviving drivers keep their previous entries (same checksum,
// proven by blob pointer identity).
func TestCatalogDeltaDriverChurn(t *testing.T) {
	srv, _ := newCatalogServer(t)
	id1, err := srv.AddDriver(catalogImage(dbver.V(1, 0, 0)), dbver.FormatImage)
	if err != nil {
		t.Fatal(err)
	}
	before, perr := srv.catalogSnapshot()
	if perr != nil {
		t.Fatal(perr)
	}
	id2, err := srv.AddDriver(catalogImage(dbver.V(2, 0, 0)), dbver.FormatImage)
	if err != nil {
		t.Fatal(err)
	}
	after, perr := srv.catalogSnapshot()
	if perr != nil {
		t.Fatal(perr)
	}
	if after.byID[id1] == nil || after.byID[id2] == nil {
		t.Fatal("delta reload lost a driver")
	}
	if after.byID[id1].checksum != before.byID[id1].checksum {
		t.Fatal("surviving driver changed checksum across delta reload")
	}
	// The cheap proof the entry was carried, not recomputed: the blob
	// identity pointer is the same one the previous load captured.
	if after.byID[id1].blobHead != before.byID[id1].blobHead {
		t.Fatal("surviving driver was rescanned (blob identity changed)")
	}
}

// TestCatalogDriverIDReuseRechecksums: a driver id freed and re-used
// with different content (possible via raw SQL, or max-id reuse on a
// shared store) must NOT inherit the stale checksum — pointer identity
// of the blob is the guard.
func TestCatalogDriverIDReuseRechecksums(t *testing.T) {
	srv, st := newCatalogServer(t)
	id, err := srv.AddDriver(catalogImage(dbver.V(1, 0, 0)), dbver.FormatImage)
	if err != nil {
		t.Fatal(err)
	}
	before, perr := srv.catalogSnapshot()
	if perr != nil {
		t.Fatal(perr)
	}
	oldSum := before.byID[id].checksum

	// Replace the row in place: same driver_id, different image bytes.
	if _, err := st.Exec(`DELETE FROM `+DriversTable+` WHERE driver_id = $id`,
		sqlmini.Args{"id": id}); err != nil {
		t.Fatal(err)
	}
	img := catalogImage(dbver.V(9, 9, 9))
	img.Payload = []byte("completely different driver body")
	if err := insertDriver(st, DriverRecord{
		DriverID:   id,
		APIName:    img.Manifest.API.Name,
		APIMajor:   img.Manifest.API.Major,
		APIMinor:   img.Manifest.API.Minor,
		Version:    img.Manifest.Version,
		BinaryCode: img.Encode(),
		Format:     string(dbver.FormatImage),
	}); err != nil {
		t.Fatal(err)
	}

	after, perr := srv.catalogSnapshot()
	if perr != nil {
		t.Fatal(perr)
	}
	wantSum, err := driverimg.EncodedChecksum(img.Encode())
	if err != nil {
		t.Fatal(err)
	}
	got := after.byID[id].checksum
	if got == oldSum {
		t.Fatal("reused driver id inherited the stale checksum")
	}
	if got != wantSum {
		t.Fatalf("checksum = %s, want %s", got, wantSum)
	}
}
