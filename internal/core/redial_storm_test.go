package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/faultnet"
	"repro/internal/sqlmini"
)

// stormOutcome classifies one INSERT attempted during the redial storm.
type stormOutcome struct {
	id  int
	err error
}

// TestConnStoreRedialStorm drives the pooled external store through a
// faultnet proxy that resets connections at byte- and frame-boundaries,
// and checks the PR 4 redial contract under sustained fire:
//
//   - a successful INSERT landed exactly once (its row exists);
//   - client.ErrStatementNotSent is only ever surfaced when the row is
//     provably absent (the statement really never executed);
//   - every other lost mutation surfaces ErrExecOutcomeUnknown — a row
//     may or may not exist, but it is never double-applied (the primary
//     key would reject a replay, and that error class never appears);
//   - read-only statements never surface ErrExecOutcomeUnknown at all:
//     they are silently replayed on a fresh dial.
func TestConnStoreRedialStorm(t *testing.T) {
	db := sqlmini.NewDB()
	db.MustExec(`CREATE TABLE ops (id INTEGER NOT NULL PRIMARY KEY)`)
	srv := dbms.NewServer("legacy", dbms.WithUser("svc", "pw"))
	srv.AddDatabase("meta", db)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)

	p, err := faultnet.NewProxy(srv.Addr(), 42)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Every other connection is doomed: odd accepts die on the uplink a
	// few frames in (the statement may never reach the server), accepts
	// ≡ 2 (mod 4) die on the downlink mid-reply (the statement executed
	// but the client cannot know).
	p.SetPlanner(func(i int, rng *rand.Rand) faultnet.Plan {
		switch i % 4 {
		case 1, 3:
			return faultnet.Plan{Up: faultnet.Faults{CutAfterFrames: 2 + rng.Intn(3)}}
		case 2:
			return faultnet.Plan{Down: faultnet.Faults{CutAfterBytes: int64(30 + rng.Intn(300))}}
		default:
			return faultnet.Plan{}
		}
	})

	drv := dbms.NewNativeDriver(dbver.V(1, 0, 0), 1, dbms.WithProtocolFloor(1),
		dbms.WithOpTimeout(2*time.Second))
	store := NewConnStore(func() (client.Conn, error) {
		return drv.Connect("dbms://"+p.Addr()+"/meta", client.Props{"user": "svc", "password": "pw"})
	}, WithPoolSize(4))
	t.Cleanup(store.Close)

	const workers, perWorker = 4, 30
	var wg sync.WaitGroup
	outCh := make(chan stormOutcome, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := w*1000 + i
				_, err := store.Exec(fmt.Sprintf(`INSERT INTO ops (id) VALUES (%d)`, id))
				outCh <- stormOutcome{id: id, err: err}
				if i%8 == 0 {
					// Reads ride the same storm but must never be
					// ambiguous: the contract replays them instead.
					if _, rerr := store.Exec(`SELECT count(*) FROM ops`); rerr != nil &&
						errors.Is(rerr, ErrExecOutcomeUnknown) {
						t.Errorf("read-only statement surfaced ErrExecOutcomeUnknown: %v", rerr)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(outCh)

	// Heal the network and read back what actually landed.
	p.SetPlanner(func(i int, rng *rand.Rand) faultnet.Plan { return faultnet.Plan{} })
	res, err := store.Exec(`SELECT id FROM ops`)
	if err != nil {
		// One retry against a pool full of dead connections can lose;
		// a second statement dials entirely fresh.
		res, err = store.Exec(`SELECT id FROM ops`)
	}
	if err != nil {
		t.Fatalf("post-storm readback failed: %v", err)
	}
	landed := make(map[int]bool, len(res.Rows))
	for _, row := range res.Rows {
		landed[int(row[0].Int())] = true
	}

	var successes, notSent, unknown, other int
	unknownIDs := make(map[int]bool)
	for o := range outCh {
		switch {
		case o.err == nil:
			successes++
			if !landed[o.id] {
				t.Errorf("INSERT %d reported success but the row is missing", o.id)
			}
		case errors.Is(o.err, ErrExecOutcomeUnknown):
			unknown++
			unknownIDs[o.id] = true // either outcome is honest
		case errors.Is(o.err, client.ErrStatementNotSent):
			notSent++
			if landed[o.id] {
				t.Errorf("INSERT %d claimed ErrStatementNotSent but the row exists: %v", o.id, o.err)
			}
		default:
			// Dial/handshake failures: the statement never had a
			// connection, so it cannot have landed.
			other++
			if landed[o.id] {
				t.Errorf("INSERT %d failed before send (%v) but the row exists", o.id, o.err)
			}
		}
	}
	// No ghost rows: everything in the table traces back to a success
	// or an honestly-ambiguous outcome (the per-id checks above already
	// rejected rows from notSent/pre-send failures).
	if len(landed) > successes+unknown {
		t.Errorf("%d rows landed but only %d successes + %d ambiguous outcomes", len(landed), successes, unknown)
	}

	// The storm must actually have stormed: the planner dooms half of
	// all connections, so at least some mutations have to fail, and at
	// least one of them ambiguously.
	if notSent+unknown+other == 0 {
		t.Fatal("fault plan injected no failures; storm did not exercise the contract")
	}
	t.Logf("storm: %d ok, %d not-sent, %d outcome-unknown, %d pre-send failures, %d rows landed",
		successes, notSent, unknown, other, len(landed))
}
