package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/dbver"
)

// reseedJitter makes a server's jitter stream deterministic for a test
// (WithLeaseJitter seeds from the global rng so production fleets
// never share a stream).
func reseedJitter(s *Server, seed int64) {
	s.jitterMu.Lock()
	s.jitterRng = rand.New(rand.NewSource(seed))
	s.jitterMu.Unlock()
}

func TestLeaseJitterBounds(t *testing.T) {
	srv := &Server{}
	WithLeaseJitter(0.1)(srv)
	reseedJitter(srv, 1)
	const period = time.Hour
	lo, hi := period, period
	for i := 0; i < 10000; i++ {
		j := srv.jitterLease(period)
		if j < lo {
			lo = j
		}
		if j > hi {
			hi = j
		}
	}
	min := period * 9 / 10
	max := period * 11 / 10
	if lo < min || hi > max {
		t.Fatalf("jittered periods [%v, %v] escape the ±10%% band [%v, %v]", lo, hi, min, max)
	}
	if hi-lo < period/20 {
		t.Fatalf("jittered periods [%v, %v] barely spread — rng not applied?", lo, hi)
	}

	plain := &Server{}
	if got := plain.jitterLease(period); got != period {
		t.Fatalf("unjittered server changed the period: %v", got)
	}
}

// TestLeaseJitterDesyncsFleet pins the §3.4.2 renewal-storm defense as
// a deterministic schedule simulation: 1000 clients all granted at the
// same instant, each scheduling its next renewal one granted (jittered)
// period out — exactly what a bootloader does with Offer.LeaseTime.
// Within a few periods the lockstep cohort must have dissolved; the
// unjittered control stays a single spike forever, which is why the
// smearing has to happen server-side at grant time.
func TestLeaseJitterDesyncsFleet(t *testing.T) {
	const (
		clients = 1000
		period  = time.Hour
		rounds  = 5
	)
	// peakCohort runs the fleet schedule forward and reports the
	// largest number of clients renewing within any period/10 window
	// after the final round.
	peakCohort := func(srv *Server) int {
		times := make([]time.Duration, clients)
		for r := 0; r < rounds; r++ {
			for i := range times {
				times[i] += srv.jitterLease(period)
			}
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		window := period / 10
		peak, lo := 0, 0
		for hi := range times {
			for times[hi]-times[lo] > window {
				lo++
			}
			if n := hi - lo + 1; n > peak {
				peak = n
			}
		}
		return peak
	}

	jittered := &Server{}
	WithLeaseJitter(0.1)(jittered)
	reseedJitter(jittered, 42)
	if peak := peakCohort(jittered); peak > clients/2 {
		t.Errorf("jittered fleet still synchronized after %d periods: %d/%d clients renew within period/10",
			rounds, peak, clients)
	} else {
		t.Logf("jittered fleet: largest period/10 cohort %d/%d after %d periods", peak, clients, rounds)
	}

	if peak := peakCohort(&Server{}); peak != clients {
		t.Errorf("control drifted: unjittered lockstep fleet should renew as one cohort, got %d/%d", peak, clients)
	}
}

// TestLeaseJitterOnOffers checks the wire-visible half of the defense:
// granted offers carry the jittered period (so clients schedule their
// renew-ahead point from what was actually granted), and every renewal
// re-draws it — jitter that applied only to the first grant would let
// a synchronized fleet re-lock within one period.
func TestLeaseJitterOnOffers(t *testing.T) {
	f := newFixture(t, 1, WithDefaultLease(time.Hour), WithLeaseJitter(0.2))
	reseedJitter(f.drv, 7)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))

	lc, err := DialLeaseClient(f.drv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	min := time.Hour * 8 / 10
	max := time.Hour * 12 / 10
	grants := map[time.Duration]bool{}
	var renew Request
	for i := 0; i < 8; i++ {
		req := Request{
			Database: "prod", User: "app", Password: "app-pw",
			API:            dbver.APIOf("JDBC", 3, 0),
			ClientPlatform: dbver.PlatformLinuxAMD64,
			ClientID:       fmt.Sprintf("jitter-client-%d", i),
		}
		offer, err := lc.Request(req)
		if err != nil {
			t.Fatalf("grant %d: %v", i, err)
		}
		if offer.LeaseTime < min || offer.LeaseTime > max {
			t.Fatalf("grant %d: lease %v outside the ±20%% band around 1h", i, offer.LeaseTime)
		}
		grants[offer.LeaseTime] = true
		if i == 0 {
			renew = req
			renew.LeaseID = offer.LeaseID
			renew.CurrentChecksum = offer.DriverChecksum
		}
	}
	if len(grants) < 2 {
		t.Fatalf("8 grants drew identical lease periods %v — jitter not applied", grants)
	}

	renewals := map[time.Duration]bool{}
	for i := 0; i < 8; i++ {
		offer, err := lc.Request(renew)
		if err != nil {
			t.Fatalf("renewal %d: %v", i, err)
		}
		if offer.LeaseTime < min || offer.LeaseTime > max {
			t.Fatalf("renewal %d: lease %v outside the ±20%% band around 1h", i, offer.LeaseTime)
		}
		renewals[offer.LeaseTime] = true
	}
	if len(renewals) < 2 {
		t.Fatalf("8 renewals drew identical lease periods %v — renewals must re-jitter", renewals)
	}
}
