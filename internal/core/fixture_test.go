package core

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/sqlmini"
)

// fixture wires a complete vertical slice: a target DBMS (the database
// applications actually query), a Drivolution server (standalone, local
// store), and a driver runtime with the dbms factory registered.
type fixture struct {
	target *dbms.Server // the application database
	drv    *Server      // the Drivolution server
	rt     *driverimg.Runtime
}

// newFixture starts a target DBMS named "prod" (protocol version
// targetProto) seeded with an items table, and a Drivolution server with
// the given options.
func newFixture(t *testing.T, targetProto uint16, opts ...ServerOption) *fixture {
	t.Helper()

	appDB := sqlmini.NewDB()
	appDB.MustExec("CREATE TABLE items (id INTEGER NOT NULL PRIMARY KEY, name VARCHAR)")
	appDB.MustExec("INSERT INTO items (id, name) VALUES (1, 'widget'), (2, 'gadget')")
	target := dbms.NewServer("prod-db",
		dbms.WithUser("app", "app-pw"),
		dbms.WithProtocolVersion(targetProto))
	target.AddDatabase("prod", appDB)
	if err := target.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(target.Stop)

	store := NewLocalStore(sqlmini.NewDB())
	srv, err := NewServer("drivolution-1", store, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)

	rt := driverimg.NewRuntime()
	rt.Register(dbms.DriverKind, dbms.ImageFactory())
	return &fixture{target: target, drv: srv, rt: rt}
}

// driverImage builds a dbms-native driver image for the fixture's target
// server.
func (f *fixture) driverImage(version dbver.Version, proto uint16, payloadSize int) *driverimg.Image {
	payload := make([]byte, payloadSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	return &driverimg.Image{
		Manifest: driverimg.Manifest{
			Kind:            dbms.DriverKind,
			API:             dbver.APIOf("JDBC", 3, 0),
			Version:         version,
			ProtocolVersion: proto,
			Options:         map[string]string{"user": "app", "password": "app-pw"},
			Packages:        []string{"core"},
		},
		Payload: payload,
	}
}

// addDriver inserts a driver image and fails the test on error.
func (f *fixture) addDriver(t *testing.T, img *driverimg.Image) int64 {
	t.Helper()
	id, err := f.drv.AddDriver(img, dbver.FormatImage)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// bootloader builds a JDBC/linux bootloader against the fixture's
// Drivolution server.
func (f *fixture) bootloader(t *testing.T, opts ...BootloaderOption) *Bootloader {
	t.Helper()
	all := append([]BootloaderOption{
		WithCredentials("app", "app-pw"),
		WithDialTimeout(2 * time.Second),
		WithRetryInterval(20 * time.Millisecond),
	}, opts...)
	b := NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{f.drv.Addr()}, f.rt, all...)
	t.Cleanup(b.Close)
	return b
}

// appURL is the connection URL applications pass to the bootloader.
func (f *fixture) appURL() string { return "dbms://" + f.target.Addr() + "/prod" }

// mustConnect opens a connection through the bootloader.
func mustConnect(t *testing.T, b *Bootloader, url string) client.Conn {
	t.Helper()
	c, err := b.Connect(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}
