package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/client"
	"repro/internal/sqlmini"
)

// Store abstracts where the Drivolution schema lives. The paper's three
// deployment shapes map onto two implementations:
//
//   - LocalStore: the schema sits in an embedded/in-process database —
//     the in-database server (§4.1.2, sharing the DBMS's own sqlmini
//     instance) and the standalone server (§4.1.4, "use an embedded
//     database that does not require driver upgrades").
//   - ConnStore: the schema sits in a remote legacy DBMS reached through
//     a conventional driver connection — the external server (§4.1.3,
//     Figure 2).
//
// Store API v2 (storev2.go) extends this boundary with optional
// capability interfaces: TxStore, StmtStore, BatchStore.
type Store interface {
	// Exec runs one SQL statement against the schema's database.
	Exec(sql string, args ...any) (*sqlmini.Result, error)
}

// GenerationStore is implemented by stores that can report a cheap,
// strictly monotonic counter covering mutations of the drivers and
// driver_permission tables. The server's in-memory driver catalog is
// valid exactly as long as the generation is unchanged, which makes
// steady-state grants metadata-cache hits with zero SQL. Stores that
// cannot observe remote mutations (ConnStore, where any peer may write
// to the legacy database) simply don't implement it and the server
// falls back to per-request SQL matchmaking.
type GenerationStore interface {
	Store
	// Generation changes whenever the drivers or driver_permission
	// tables change. Lease churn must NOT affect it.
	Generation() uint64
}

// TableVersionStore is optionally implemented by generation stores
// that can attribute the generation to individual tables. The catalog
// loader uses it to reload deltas: when only driver_permission moved,
// the (potentially blob-heavy) driver entries are carried over from
// the previous catalog untouched.
type TableVersionStore interface {
	// TableVersion counts mutations of one named table.
	TableVersion(name string) uint64
}

// LocalStore serves the schema from an in-process sqlmini database. It
// implements every v2 capability natively: real transactions (engine
// undo log), prepared handles (cached AST + plan skeleton), and atomic
// batches (one engine-lock acquisition for the whole list).
type LocalStore struct {
	DB *sqlmini.DB
}

// NewLocalStore wraps db.
func NewLocalStore(db *sqlmini.DB) *LocalStore { return &LocalStore{DB: db} }

// Exec implements Store.
func (s *LocalStore) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	return s.DB.Exec(sql, args...)
}

// Generation implements GenerationStore over the embedded database's
// per-table mutation counters. It lives on the DB, not this wrapper, so
// several LocalStores over one shared DB (replicated embedded servers,
// Figure 6; a TLS frontend sharing a plaintext server's schema) observe
// each other's admin mutations.
func (s *LocalStore) Generation() uint64 {
	return s.DB.TableVersions(DriversTable, PermissionTable)
}

// TableVersion implements TableVersionStore over the embedded
// database's per-table counters.
func (s *LocalStore) TableVersion(name string) uint64 {
	return s.DB.TableVersion(name)
}

// Begin implements TxStore on the embedded engine: the transaction is
// a session with an undo log, so Rollback (or a failure inside
// RunAtomic) reverts every statement of the unit.
func (s *LocalStore) Begin() (Tx, error) {
	sess := s.DB.NewSession()
	if _, err := sess.Exec("BEGIN"); err != nil {
		sess.Close()
		return nil, err
	}
	return &localTx{sess: sess}, nil
}

type localTx struct {
	sess *sqlmini.Session
	done bool
}

func (tx *localTx) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	return tx.sess.Exec(sql, args...)
}

func (tx *localTx) Query(sql string, args ...any) (*sqlmini.Result, error) {
	return tx.Exec(sql, args...)
}

func (tx *localTx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	_, err := tx.sess.Exec("COMMIT")
	tx.sess.Close()
	return err
}

func (tx *localTx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	_, err := tx.sess.Exec("ROLLBACK")
	tx.sess.Close()
	return err
}

// Prepare implements StmtStore: the handle carries the parsed AST and
// the planner's cached analysis (sqlmini.Prepared), so per-call work
// is binding arguments and evaluating the index keys.
func (s *LocalStore) Prepare(sql string) (Stmt, error) {
	p, err := s.DB.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return localStmt{p: p}, nil
}

type localStmt struct{ p *sqlmini.Prepared }

func (st localStmt) Exec(args ...any) (*sqlmini.Result, error) { return st.p.Exec(args...) }
func (st localStmt) Close() error                              { return nil }

// ExecBatch implements BatchStore: the whole list executes under a
// single engine-lock acquisition, atomically and isolated — no other
// session's statement can interleave between batch statements.
func (s *LocalStore) ExecBatch(stmts []Statement) ([]*sqlmini.Result, error) {
	bs := make([]sqlmini.BatchStmt, len(stmts))
	for i, st := range stmts {
		bs[i] = sqlmini.BatchStmt{SQL: st.SQL, Args: st.Args}
	}
	return s.DB.ExecBatchAtomic(bs)
}

// ConnStore serves the schema through legacy driver connections to a
// remote database (Figure 2: "the server then connects to the database
// using a legacy database driver"). It keeps a small pool of
// connections: plain statements borrow one for a single round trip, a
// transaction pins one for its whole lifetime (per-tx connection
// affinity), so a long transaction never head-of-line blocks
// unrelated statements the way the old single-connection store did.
//
// Failure semantics (the redial contract): a connection-level failure
// is retried on a fresh dial ONLY when the statement provably never
// executed — the driver marked it client.ErrStatementNotSent (it never
// left the client), or the statement is a SELECT and therefore safe to
// replay. Any other mid-statement connection loss surfaces as
// ErrExecOutcomeUnknown instead of being replayed verbatim: the old
// behavior could double-apply a non-idempotent statement that reached
// the server just before the connection died.
//
// When the dialed connections negotiate the v2 session capabilities,
// ConnStore additionally implements:
//
//   - StmtStore: Prepare returns handles backed by SERVER-side prepared
//     statements (client.StmtConn). Each pooled connection caches one
//     remote handle per SQL text; a connection death invalidates its
//     handles and execution transparently re-prepares on the
//     replacement — but replays the statement itself only under the
//     redial contract above.
//   - GenerationStore / TableVersionStore: Generation probes the remote
//     engine's per-table mutation counters over client.TableVersionConn
//     (one wire round trip, zero SQL), which extends the server's
//     zero-SQL catalog fast path to external deployments.
//
// Against a v1 peer both capabilities degrade exactly to the old
// behavior: Prepare handles execute as plain per-call SQL, and
// GenerationSupported reports false so the catalog keeps the SQL
// matchmaking path.
type ConnStore struct {
	dial func() (client.Conn, error)
	size int
	// sem bounds BORROWED connections at size: every acquire takes a
	// token, every release/discard returns it, so a burst of demand
	// queues here instead of dialing a connection storm against the
	// legacy database.
	sem chan struct{}

	// genTables are the tables whose version counters compose
	// Generation(); the drivers + permission pair by default.
	genTables []string

	mu     sync.Mutex
	idle   []*poolConn
	closed bool

	// genCap memoizes whether the remote sessions carry the
	// table-versions capability: 0 undetermined, 1 yes, 2 no. Decided
	// from the first live connection. "Yes" can later demote to "no"
	// when a probe is refused with ErrNotSupported (the remote was
	// downgraded mid-life); it never flaps back — an upgrade is picked
	// up on the next store, and flapping would thrash the catalog.
	genCap atomic.Int32
	// genFail drives the Generation fallback: while probes fail, every
	// call reports a fresh value in a range real counter sums cannot
	// reach, so the catalog never trusts a stale snapshot during an
	// outage.
	genFail atomic.Uint64

	// Pool/session health counters (Stats).
	dials       atomic.Int64
	redials     atomic.Int64
	prepares    atomic.Int64
	handlesLive atomic.Int64
}

// poolConn is one pooled driver connection plus its session-scoped
// remote prepared-handle cache. The cache is only touched by the
// borrower (a connection has exactly one at a time), dies with the
// connection, and is bounded at maxConnStmts.
type poolConn struct {
	conn  client.Conn
	stmts map[string]client.ConnStmt
}

// maxConnStmts bounds one connection's remote-handle cache, below the
// server's own per-session handle limit so a well-behaved store can
// never trip it. Overflowing statements simply execute ad hoc.
const maxConnStmts = 128

// ConnStoreOption configures a ConnStore.
type ConnStoreOption func(*ConnStore)

// WithPoolSize bounds the pool (default 4): at most n statements or
// transactions hold a connection concurrently (excess callers wait for
// a slot), and at most n idle connections are retained.
func WithPoolSize(n int) ConnStoreOption {
	return func(s *ConnStore) {
		if n >= 1 {
			s.size = n
		}
	}
}

// NewConnStore creates a store that obtains connections from dial.
func NewConnStore(dial func() (client.Conn, error), opts ...ConnStoreOption) *ConnStore {
	s := &ConnStore{dial: dial, size: 4,
		genTables: []string{DriversTable, PermissionTable}}
	for _, o := range opts {
		o(s)
	}
	s.sem = make(chan struct{}, s.size)
	return s
}

var errConnStoreClosed = errors.New("core: external store is closed")

// acquire takes a pool slot, then returns an idle connection or dials
// a new one. Idle connections are NOT pinged — a dead one is detected
// (and classified) by the statement that trips over it.
func (s *ConnStore) acquire() (*poolConn, error) {
	s.sem <- struct{}{}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.sem
		return nil, errConnStoreClosed
	}
	if n := len(s.idle); n > 0 {
		pc := s.idle[n-1]
		s.idle = s.idle[:n-1]
		s.mu.Unlock()
		return pc, nil
	}
	s.mu.Unlock()
	c, err := s.dial()
	if err != nil {
		<-s.sem
		return nil, fmt.Errorf("core: external store dial: %w", err)
	}
	s.dials.Add(1)
	return &poolConn{conn: c}, nil
}

// closeConn closes a connection and writes off its cached remote
// handles (they die with the session).
func (s *ConnStore) closeConn(pc *poolConn) {
	s.handlesLive.Add(-int64(len(pc.stmts)))
	pc.stmts = nil
	_ = pc.conn.Close()
}

// release returns a healthy connection to the pool (or closes it when
// the pool is full or the store closed) and frees the slot.
func (s *ConnStore) release(pc *poolConn) {
	s.mu.Lock()
	if !s.closed && len(s.idle) < s.size {
		s.idle = append(s.idle, pc)
		s.mu.Unlock()
		<-s.sem
		return
	}
	s.mu.Unlock()
	s.closeConn(pc)
	<-s.sem
}

// discard drops a broken connection and frees its slot.
func (s *ConnStore) discard(pc *poolConn) {
	s.closeConn(pc)
	<-s.sem
}

// flushIdle closes every pooled idle connection (none hold sem slots).
func (s *ConnStore) flushIdle() {
	s.mu.Lock()
	stale := s.idle
	s.idle = nil
	s.mu.Unlock()
	for _, pc := range stale {
		s.closeConn(pc)
	}
}

// redial replaces a just-discarded connection: peers pooled alongside
// a dead connection usually died with it (a server bounce), so the
// idle set is flushed before acquiring a (then freshly dialed) one.
func (s *ConnStore) redial() (*poolConn, error) {
	s.flushIdle()
	s.redials.Add(1)
	pc, err := s.acquire()
	if err != nil {
		return nil, fmt.Errorf("core: external store redial: %w", err)
	}
	return pc, nil
}

// settle routes a used connection back by health: live connections
// return to the pool, dead ones are dropped.
func (s *ConnStore) settle(pc *poolConn) {
	if pc.conn.Ping() == nil {
		s.release(pc)
		return
	}
	s.discard(pc)
}

// safeToReplay reports whether sql may be re-executed even though an
// earlier attempt might have reached the server: only statements the
// parser proves read-only (SELECT) qualify.
func safeToReplay(sql string) bool {
	st, err := sqlmini.Parse(sql)
	if err != nil {
		return false
	}
	_, isSelect := st.(*sqlmini.SelectStmt)
	return isSelect
}

// txControl matches statements that manipulate session transaction
// state — meaningless through a pooled autocommit Exec, where each
// statement may land on a different connection and a BEGIN would park
// an open transaction in the pool for an unrelated borrower.
func txControl(sql string) bool {
	i := 0
	for i < len(sql) && (sql[i] == ' ' || sql[i] == '\t' || sql[i] == '\n' || sql[i] == '\r') {
		i++
	}
	rest := sql[i:]
	for _, kw := range [...]string{"BEGIN", "COMMIT", "ROLLBACK"} {
		if len(rest) < len(kw) || !strings.EqualFold(rest[:len(kw)], kw) {
			continue
		}
		if len(rest) == len(kw) {
			return true
		}
		// Word boundary: don't trip on identifiers sharing the prefix.
		c := rest[len(kw)]
		if !(c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
			return true
		}
	}
	return false
}

// runRedial executes one attempt on a borrowed connection under the
// redial contract shared by every ConnStore round trip. attempt
// reports notSent=true when the operation provably never executed a
// statement (e.g. a prepare-phase failure); readOnly marks operations
// safe to replay even after an ambiguous failure.
//
// Classification: a live connection answering a ping means the error
// was the operation's own (constraint violation, bad SQL, ...) — pass
// it through and keep the connection. A dead connection is discarded;
// the operation retries once on a fresh dial ONLY when it provably
// never executed or is read-only, because a replay could double-apply
// a statement that reached the server just before the connection died
// — every other loss surfaces ErrExecOutcomeUnknown, and the idle
// peers are flushed (they usually died with the connection in a server
// bounce). A retry's failure is classified exactly like the first
// attempt's; there is no third try.
func (s *ConnStore) runRedial(readOnly bool, attempt func(pc *poolConn) (any, error, bool)) (any, error) {
	pc, err := s.acquire()
	if err != nil {
		return nil, err
	}
	v, err, notSent := attempt(pc)
	if err == nil {
		s.release(pc)
		return v, nil
	}
	if pc.conn.Ping() == nil {
		s.release(pc)
		return nil, err
	}
	s.discard(pc)
	if !notSent && !errors.Is(err, client.ErrStatementNotSent) && !readOnly {
		s.flushIdle()
		return nil, fmt.Errorf("%w: %v", ErrExecOutcomeUnknown, err)
	}
	pc2, dialErr := s.redial()
	if dialErr != nil {
		return nil, dialErr
	}
	v, err, notSent = attempt(pc2)
	if err != nil {
		if pc2.conn.Ping() == nil {
			s.release(pc2)
			return nil, err
		}
		s.discard(pc2)
		if !notSent && !errors.Is(err, client.ErrStatementNotSent) && !readOnly {
			return nil, fmt.Errorf("%w: %v", ErrExecOutcomeUnknown, err)
		}
		return nil, err // provably unexecuted (or harmless); no third try
	}
	s.release(pc2)
	return v, nil
}

// Exec implements Store. Transaction control is rejected: the pool
// gives each statement its own connection, so session transactions
// must go through Begin (TxStore), which pins one.
func (s *ConnStore) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	if txControl(sql) {
		return nil, fmt.Errorf("core: external store: transaction control via Exec is not supported on a pooled store; use Begin()")
	}
	v, err := s.runRedial(safeToReplay(sql), func(pc *poolConn) (any, error, bool) {
		res, err := pc.conn.Exec(sql, args...)
		return res, err, false
	})
	if err != nil {
		return nil, err
	}
	return toStoreResult(v.(*client.Result)), nil
}

// Query implements row-returning statements (same path as Exec).
func (s *ConnStore) Query(sql string, args ...any) (*sqlmini.Result, error) {
	return s.Exec(sql, args...)
}

// Begin implements TxStore: the transaction owns one pooled connection
// until Commit/Rollback (per-tx affinity), so concurrent plain
// statements and other transactions proceed on their own connections.
func (s *ConnStore) Begin() (Tx, error) {
	pc, err := s.acquire()
	if err != nil {
		return nil, err
	}
	if err := pc.conn.Begin(); err != nil {
		if !errors.Is(err, client.ErrStatementNotSent) && pc.conn.Ping() == nil {
			s.release(pc)
			return nil, err
		}
		s.discard(pc)
		// BEGIN has no effect worth preserving; retry once on a fresh
		// connection.
		pc, err = s.redial()
		if err != nil {
			return nil, err
		}
		if err := pc.conn.Begin(); err != nil {
			s.settle(pc)
			return nil, err
		}
	}
	return &connTx{s: s, c: pc}, nil
}

type connTx struct {
	s      *ConnStore
	c      *poolConn
	done   bool
	broken bool
}

func (tx *connTx) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	if tx.broken {
		return nil, fmt.Errorf("%w: transaction connection already lost", ErrExecOutcomeUnknown)
	}
	res, err := tx.c.conn.Exec(sql, args...)
	if err != nil {
		if tx.c.conn.Ping() != nil {
			tx.broken = true
			tx.s.flushIdle() // idle peers likely died with it
			return nil, fmt.Errorf("%w: %v", ErrExecOutcomeUnknown, err)
		}
		return nil, err
	}
	return toStoreResult(res), nil
}

func (tx *connTx) Query(sql string, args ...any) (*sqlmini.Result, error) {
	return tx.Exec(sql, args...)
}

func (tx *connTx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	if tx.broken {
		tx.s.discard(tx.c)
		// The remote rolls the open transaction back when the dead
		// session unwinds, but we cannot observe that: ambiguous.
		return fmt.Errorf("%w: commit on a lost transaction connection", ErrExecOutcomeUnknown)
	}
	if err := tx.c.conn.Commit(); err != nil {
		if tx.c.conn.Ping() != nil {
			tx.s.discard(tx.c)
			return fmt.Errorf("%w: %v", ErrExecOutcomeUnknown, err)
		}
		// A failed COMMIT on a live connection must not park a session
		// that is still inside (or aborted within) a transaction: later
		// borrowers would silently execute inside it. Only a connection
		// that provably left the transaction goes back to the pool.
		if tx.c.conn.InTx() {
			tx.s.discard(tx.c)
		} else {
			tx.s.release(tx.c)
		}
		return err
	}
	tx.s.release(tx.c)
	return nil
}

func (tx *connTx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	if tx.broken {
		// A lost connection aborts the remote transaction anyway.
		tx.s.discard(tx.c)
		return nil
	}
	err := tx.c.conn.Rollback()
	if err != nil {
		if tx.c.conn.Ping() != nil {
			tx.s.discard(tx.c)
			return nil // connection death == rollback
		}
		if tx.c.conn.InTx() {
			tx.s.discard(tx.c) // see Commit: never pool an open tx
			return err
		}
	}
	tx.s.release(tx.c)
	return err
}

// ExecBatch implements BatchStore. When the driver connection supports
// batch frames (client.BatchConn — the dbms native driver does), the
// whole list travels in ONE wire round trip and executes atomically on
// the server. Otherwise the list runs statement-by-statement on one
// pinned connection inside BEGIN/COMMIT — still atomic, at N+2 round
// trips. Mid-batch connection loss is never replayed (batches carry
// mutations); it surfaces as ErrExecOutcomeUnknown.
func (s *ConnStore) ExecBatch(stmts []Statement) ([]*sqlmini.Result, error) {
	pc, err := s.acquire()
	if err != nil {
		return nil, err
	}
	if bc, ok := pc.conn.(client.BatchConn); ok {
		rs, err := bc.ExecBatch(true, stmts)
		if err == nil {
			s.release(pc)
			out := make([]*sqlmini.Result, len(rs))
			for i, r := range rs {
				out[i] = toStoreResult(r)
			}
			return out, nil
		}
		if pc.conn.Ping() == nil {
			s.release(pc)
			return nil, err
		}
		s.discard(pc)
		s.flushIdle() // idle peers likely died with it (server bounce)
		if errors.Is(err, client.ErrStatementNotSent) {
			// The frame never left: nothing executed; the caller may
			// retry, but we do not auto-replay mutating batches.
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrExecOutcomeUnknown, err)
	}
	// Non-batch connection: emulate atomicity with an explicit
	// transaction pinned to this connection. The release/Begin pair is
	// not a wasted dial: release pushes onto the idle stack and Begin's
	// acquire pops from it, so absent contention Begin reuses this very
	// connection.
	s.release(pc)
	var out []*sqlmini.Result
	err = RunAtomic(s, func(tx Tx) error {
		for i, st := range stmts {
			res, err := tx.Exec(st.SQL, st.Args...)
			if err != nil {
				out = nil
				return fmt.Errorf("core: batch statement %d: %w", i+1, err)
			}
			out = append(out, res)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func toStoreResult(res *client.Result) *sqlmini.Result {
	return &sqlmini.Result{Cols: res.Cols, Rows: res.Rows, Affected: res.Affected}
}

// Prepare implements StmtStore over remote prepared handles. The
// returned handle is store-level: each execution borrows a pooled
// connection and runs through THAT connection's server-side handle for
// the SQL text (prepared on first use, cached per connection, died and
// transparently re-prepared when the connection is replaced). Against
// sessions without the prepared-statements capability the handle
// executes as plain per-call SQL — exactly the PrepareOn fallback, one
// code path for the caller either way.
func (s *ConnStore) Prepare(sql string) (Stmt, error) {
	if txControl(sql) {
		return nil, fmt.Errorf("core: external store: transaction control cannot be prepared on a pooled store; use Begin()")
	}
	return &remoteStmt{s: s, sql: sql, readOnly: safeToReplay(sql)}, nil
}

// remoteStmt is ConnStore's store-level prepared handle.
type remoteStmt struct {
	s        *ConnStore
	sql      string
	readOnly bool // SELECT: provably safe to replay after an ambiguous failure
}

// errStmtFallback marks a per-connection condition (capability absent,
// handle cache full) under which the statement executes ad hoc on the
// same borrowed connection.
var errStmtFallback = errors.New("core: remote handle unavailable on this connection")

// stmtFor returns pc's remote handle for sql, preparing and caching it
// on first use. errStmtFallback means "run it ad hoc"; any other error
// is a prepare failure (the statement itself provably never executed).
func (s *ConnStore) stmtFor(pc *poolConn, sql string) (client.ConnStmt, error) {
	if h, ok := pc.stmts[sql]; ok {
		return h, nil
	}
	sc, ok := pc.conn.(client.StmtConn)
	if !ok {
		return nil, errStmtFallback
	}
	if fc, ok := pc.conn.(client.FeatureConn); ok && !fc.Supports(client.FeaturePreparedStatements) {
		return nil, errStmtFallback // negotiated session lacks the capability: no I/O wasted
	}
	if len(pc.stmts) >= maxConnStmts {
		return nil, errStmtFallback
	}
	h, err := sc.Prepare(sql)
	if err != nil {
		if errors.Is(err, client.ErrNotSupported) {
			return nil, errStmtFallback
		}
		return nil, err
	}
	if pc.stmts == nil {
		pc.stmts = make(map[string]client.ConnStmt)
	}
	pc.stmts[sql] = h
	s.prepares.Add(1)
	s.handlesLive.Add(1)
	return h, nil
}

// execPrepared runs one prepared execution on pc. notSent reports that
// the statement provably never executed (the failure happened in the
// prepare phase, which runs no statement), so the caller may replay on
// a fresh connection regardless of the statement's mutation class.
func (s *ConnStore) execPrepared(pc *poolConn, sql string, args []any) (res *client.Result, err error, notSent bool) {
	h, err := s.stmtFor(pc, sql)
	if err != nil {
		if errors.Is(err, errStmtFallback) {
			res, err = pc.conn.Exec(sql, args...)
			return res, err, false
		}
		return nil, err, true // prepare-phase failure: statement never ran
	}
	res, err = h.Exec(args...)
	return res, err, false
}

// Exec implements Stmt under the shared redial contract (runRedial): a
// connection death invalidates the connection's handles and retries
// once on a fresh dial — which re-prepares transparently — ONLY when
// the statement provably never executed or is read-only.
func (st *remoteStmt) Exec(args ...any) (*sqlmini.Result, error) {
	v, err := st.s.runRedial(st.readOnly, func(pc *poolConn) (any, error, bool) {
		res, err, notSent := st.s.execPrepared(pc, st.sql, args)
		return res, err, notSent
	})
	if err != nil {
		return nil, err
	}
	return toStoreResult(v.(*client.Result)), nil
}

// Close implements Stmt. The store-level handle owns no connection
// state of its own — per-connection server handles are released when
// their connections retire — so Close is a no-op.
func (st *remoteStmt) Close() error { return nil }

// genFallbackBase puts Generation's failure values far above any real
// counter sum, and genFail makes every failing call distinct, so a
// probe outage can never validate a cached catalog.
const genFallbackBase = uint64(1) << 63

// GenerationSupported implements OptionalGenerationStore: whether the
// remote sessions negotiated the table-versions capability. Determined
// from the first live connection, and demoted for good if a later
// probe is refused (remote downgraded mid-life — see probeVersions);
// while no connection can be established the answer is false
// (un-cached), so the catalog stays on the SQL path that will surface
// the real error.
func (s *ConnStore) GenerationSupported() bool {
	switch s.genCap.Load() {
	case 1:
		return true
	case 2:
		return false
	}
	pc, err := s.acquire()
	if err != nil {
		return false // undetermined: retry on a later call
	}
	supported := false
	if _, ok := pc.conn.(client.TableVersionConn); ok {
		if fc, ok := pc.conn.(client.FeatureConn); !ok || fc.Supports(client.FeatureTableVersions) {
			supported = true
		}
	}
	s.release(pc)
	if supported {
		s.genCap.Store(1)
	} else {
		s.genCap.Store(2)
	}
	return supported
}

// probeVersions runs one table-versions probe under the shared redial
// contract: probes execute no statement (readOnly), so an ambiguous
// connection death always permits one retry on a fresh dial. A probe
// refused with client.ErrNotSupported demotes the store's generation
// capability for good — the remote was downgraded (or replaced) by a
// peer that no longer speaks it, and without the demotion every future
// Generation call would burn a failing probe before falling back.
func (s *ConnStore) probeVersions(names []string) ([]uint64, error) {
	v, err := s.runRedial(true, func(pc *poolConn) (any, error, bool) {
		tvc, ok := pc.conn.(client.TableVersionConn)
		if !ok {
			return nil, client.ErrNotSupported, true
		}
		vs, err := tvc.TableVersions(names...)
		return vs, err, false
	})
	if err != nil {
		if errors.Is(err, client.ErrNotSupported) {
			s.genCap.Store(2)
		}
		return nil, err
	}
	return v.([]uint64), nil
}

// Generation implements GenerationStore over the wire: one
// msgTableVersions round trip summing the drivers and permission table
// counters — zero SQL, which is what lets the catalog fast path reach
// external deployments. Table versions only grow, so the sum is as
// monotonic as LocalStore's. While probes fail, every call reports a
// distinct out-of-band value: the catalog treats its snapshot as stale
// and falls back to the SQL reload, which surfaces the outage.
func (s *ConnStore) Generation() uint64 {
	vs, err := s.probeVersions(s.genTables)
	if err != nil {
		return genFallbackBase + s.genFail.Add(1)
	}
	var sum uint64
	for _, v := range vs {
		sum += v
	}
	return sum
}

// TableVersion implements TableVersionStore over the wire (the
// catalog's delta-reload hint). Failures report a distinct out-of-band
// value, which costs only the delta optimization.
func (s *ConnStore) TableVersion(name string) uint64 {
	vs, err := s.probeVersions([]string{name})
	if err != nil {
		return genFallbackBase + s.genFail.Add(1)
	}
	return vs[0]
}

// ConnStoreStats is a point-in-time view of pool and remote-session
// health, for operators watching an external deployment.
type ConnStoreStats struct {
	// InUse counts connections currently borrowed (statements,
	// transactions, batches, and generation probes in flight).
	InUse int
	// Idle counts healthy connections parked in the pool.
	Idle int
	// Dials counts fresh connections established since creation.
	Dials int64
	// Redials counts replacement dials after a connection death — a
	// rising rate means the legacy database (or the path to it) is
	// flapping.
	Redials int64
	// RemotePrepares counts server-side prepared handles created
	// (msgPrepare round trips). Steady state should show this plateau
	// at roughly (statement vocabulary × pool size).
	RemotePrepares int64
	// RemoteHandlesLive counts handles currently cached on live pooled
	// connections.
	RemoteHandlesLive int64
}

// Stats reports current pool and session health.
func (s *ConnStore) Stats() ConnStoreStats {
	s.mu.Lock()
	idle := len(s.idle)
	s.mu.Unlock()
	return ConnStoreStats{
		// Idle connections hold no semaphore tokens, so every token
		// belongs to an in-flight borrower.
		InUse:             len(s.sem),
		Idle:              idle,
		Dials:             s.dials.Load(),
		Redials:           s.redials.Load(),
		RemotePrepares:    s.prepares.Load(),
		RemoteHandlesLive: s.handlesLive.Load(),
	}
}

// Close releases all pooled connections. In-flight borrowers settle
// their connections afterwards (closed on release).
func (s *ConnStore) Close() {
	s.mu.Lock()
	idle := s.idle
	s.idle = nil
	s.closed = true
	s.mu.Unlock()
	for _, pc := range idle {
		s.closeConn(pc)
	}
}
