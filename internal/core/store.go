package core

import (
	"fmt"
	"sync"

	"repro/internal/client"
	"repro/internal/sqlmini"
)

// Store abstracts where the Drivolution schema lives. The paper's three
// deployment shapes map onto two implementations:
//
//   - LocalStore: the schema sits in an embedded/in-process database —
//     the in-database server (§4.1.2, sharing the DBMS's own sqlmini
//     instance) and the standalone server (§4.1.4, "use an embedded
//     database that does not require driver upgrades").
//   - ConnStore: the schema sits in a remote legacy DBMS reached through
//     a conventional driver connection — the external server (§4.1.3,
//     Figure 2).
type Store interface {
	// Exec runs one SQL statement against the schema's database.
	Exec(sql string, args ...any) (*sqlmini.Result, error)
}

// LocalStore serves the schema from an in-process sqlmini database.
type LocalStore struct {
	DB *sqlmini.DB
}

// NewLocalStore wraps db.
func NewLocalStore(db *sqlmini.DB) *LocalStore { return &LocalStore{DB: db} }

// Exec implements Store.
func (s *LocalStore) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	return s.DB.Exec(sql, args...)
}

// ConnStore serves the schema through a legacy driver connection to a
// remote database (Figure 2: "the server then connects to the database
// using a legacy database driver"). Statements serialize on the single
// connection; on connection failure it redials lazily.
type ConnStore struct {
	mu      sync.Mutex
	dial    func() (client.Conn, error)
	conn    client.Conn
	dialErr error
}

// NewConnStore creates a store that obtains connections from dial.
func NewConnStore(dial func() (client.Conn, error)) *ConnStore {
	return &ConnStore{dial: dial}
}

// Exec implements Store.
func (s *ConnStore) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		c, err := s.dial()
		if err != nil {
			return nil, fmt.Errorf("core: external store dial: %w", err)
		}
		s.conn = c
	}
	res, err := s.conn.Exec(sql, args...)
	if err != nil {
		// A dead connection is retried once on a fresh dial; statement
		// errors pass through.
		if pingErr := s.conn.Ping(); pingErr != nil {
			_ = s.conn.Close()
			s.conn = nil
			c, dialErr := s.dial()
			if dialErr != nil {
				return nil, fmt.Errorf("core: external store redial: %w", dialErr)
			}
			s.conn = c
			res, err = s.conn.Exec(sql, args...)
		}
		if err != nil {
			return nil, err
		}
	}
	return &sqlmini.Result{Cols: res.Cols, Rows: res.Rows, Affected: res.Affected}, nil
}

// Close releases the underlying connection.
func (s *ConnStore) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil {
		_ = s.conn.Close()
		s.conn = nil
	}
}
