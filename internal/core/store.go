package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/client"
	"repro/internal/sqlmini"
)

// Store abstracts where the Drivolution schema lives. The paper's three
// deployment shapes map onto two implementations:
//
//   - LocalStore: the schema sits in an embedded/in-process database —
//     the in-database server (§4.1.2, sharing the DBMS's own sqlmini
//     instance) and the standalone server (§4.1.4, "use an embedded
//     database that does not require driver upgrades").
//   - ConnStore: the schema sits in a remote legacy DBMS reached through
//     a conventional driver connection — the external server (§4.1.3,
//     Figure 2).
//
// Store API v2 (storev2.go) extends this boundary with optional
// capability interfaces: TxStore, StmtStore, BatchStore.
type Store interface {
	// Exec runs one SQL statement against the schema's database.
	Exec(sql string, args ...any) (*sqlmini.Result, error)
}

// GenerationStore is implemented by stores that can report a cheap,
// strictly monotonic counter covering mutations of the drivers and
// driver_permission tables. The server's in-memory driver catalog is
// valid exactly as long as the generation is unchanged, which makes
// steady-state grants metadata-cache hits with zero SQL. Stores that
// cannot observe remote mutations (ConnStore, where any peer may write
// to the legacy database) simply don't implement it and the server
// falls back to per-request SQL matchmaking.
type GenerationStore interface {
	Store
	// Generation changes whenever the drivers or driver_permission
	// tables change. Lease churn must NOT affect it.
	Generation() uint64
}

// TableVersionStore is optionally implemented by generation stores
// that can attribute the generation to individual tables. The catalog
// loader uses it to reload deltas: when only driver_permission moved,
// the (potentially blob-heavy) driver entries are carried over from
// the previous catalog untouched.
type TableVersionStore interface {
	// TableVersion counts mutations of one named table.
	TableVersion(name string) uint64
}

// LocalStore serves the schema from an in-process sqlmini database. It
// implements every v2 capability natively: real transactions (engine
// undo log), prepared handles (cached AST + plan skeleton), and atomic
// batches (one engine-lock acquisition for the whole list).
type LocalStore struct {
	DB *sqlmini.DB
}

// NewLocalStore wraps db.
func NewLocalStore(db *sqlmini.DB) *LocalStore { return &LocalStore{DB: db} }

// Exec implements Store.
func (s *LocalStore) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	return s.DB.Exec(sql, args...)
}

// Generation implements GenerationStore over the embedded database's
// per-table mutation counters. It lives on the DB, not this wrapper, so
// several LocalStores over one shared DB (replicated embedded servers,
// Figure 6; a TLS frontend sharing a plaintext server's schema) observe
// each other's admin mutations.
func (s *LocalStore) Generation() uint64 {
	return s.DB.TableVersions(DriversTable, PermissionTable)
}

// TableVersion implements TableVersionStore over the embedded
// database's per-table counters.
func (s *LocalStore) TableVersion(name string) uint64 {
	return s.DB.TableVersion(name)
}

// Begin implements TxStore on the embedded engine: the transaction is
// a session with an undo log, so Rollback (or a failure inside
// RunAtomic) reverts every statement of the unit.
func (s *LocalStore) Begin() (Tx, error) {
	sess := s.DB.NewSession()
	if _, err := sess.Exec("BEGIN"); err != nil {
		sess.Close()
		return nil, err
	}
	return &localTx{sess: sess}, nil
}

type localTx struct {
	sess *sqlmini.Session
	done bool
}

func (tx *localTx) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	return tx.sess.Exec(sql, args...)
}

func (tx *localTx) Query(sql string, args ...any) (*sqlmini.Result, error) {
	return tx.Exec(sql, args...)
}

func (tx *localTx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	_, err := tx.sess.Exec("COMMIT")
	tx.sess.Close()
	return err
}

func (tx *localTx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	_, err := tx.sess.Exec("ROLLBACK")
	tx.sess.Close()
	return err
}

// Prepare implements StmtStore: the handle carries the parsed AST and
// the planner's cached analysis (sqlmini.Prepared), so per-call work
// is binding arguments and evaluating the index keys.
func (s *LocalStore) Prepare(sql string) (Stmt, error) {
	p, err := s.DB.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return localStmt{p: p}, nil
}

type localStmt struct{ p *sqlmini.Prepared }

func (st localStmt) Exec(args ...any) (*sqlmini.Result, error) { return st.p.Exec(args...) }
func (st localStmt) Close() error                              { return nil }

// ExecBatch implements BatchStore: the whole list executes under a
// single engine-lock acquisition, atomically and isolated — no other
// session's statement can interleave between batch statements.
func (s *LocalStore) ExecBatch(stmts []Statement) ([]*sqlmini.Result, error) {
	bs := make([]sqlmini.BatchStmt, len(stmts))
	for i, st := range stmts {
		bs[i] = sqlmini.BatchStmt{SQL: st.SQL, Args: st.Args}
	}
	return s.DB.ExecBatchAtomic(bs)
}

// ConnStore serves the schema through legacy driver connections to a
// remote database (Figure 2: "the server then connects to the database
// using a legacy database driver"). It keeps a small pool of
// connections: plain statements borrow one for a single round trip, a
// transaction pins one for its whole lifetime (per-tx connection
// affinity), so a long transaction never head-of-line blocks
// unrelated statements the way the old single-connection store did.
//
// Failure semantics (the redial contract): a connection-level failure
// is retried on a fresh dial ONLY when the statement provably never
// executed — the driver marked it client.ErrStatementNotSent (it never
// left the client), or the statement is a SELECT and therefore safe to
// replay. Any other mid-statement connection loss surfaces as
// ErrExecOutcomeUnknown instead of being replayed verbatim: the old
// behavior could double-apply a non-idempotent statement that reached
// the server just before the connection died.
type ConnStore struct {
	dial func() (client.Conn, error)
	size int
	// sem bounds BORROWED connections at size: every acquire takes a
	// token, every release/discard returns it, so a burst of demand
	// queues here instead of dialing a connection storm against the
	// legacy database.
	sem chan struct{}

	mu     sync.Mutex
	idle   []client.Conn
	closed bool
}

// ConnStoreOption configures a ConnStore.
type ConnStoreOption func(*ConnStore)

// WithPoolSize bounds the pool (default 4): at most n statements or
// transactions hold a connection concurrently (excess callers wait for
// a slot), and at most n idle connections are retained.
func WithPoolSize(n int) ConnStoreOption {
	return func(s *ConnStore) {
		if n >= 1 {
			s.size = n
		}
	}
}

// NewConnStore creates a store that obtains connections from dial.
func NewConnStore(dial func() (client.Conn, error), opts ...ConnStoreOption) *ConnStore {
	s := &ConnStore{dial: dial, size: 4}
	for _, o := range opts {
		o(s)
	}
	s.sem = make(chan struct{}, s.size)
	return s
}

var errConnStoreClosed = errors.New("core: external store is closed")

// acquire takes a pool slot, then returns an idle connection or dials
// a new one. Idle connections are NOT pinged — a dead one is detected
// (and classified) by the statement that trips over it.
func (s *ConnStore) acquire() (client.Conn, error) {
	s.sem <- struct{}{}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.sem
		return nil, errConnStoreClosed
	}
	if n := len(s.idle); n > 0 {
		c := s.idle[n-1]
		s.idle = s.idle[:n-1]
		s.mu.Unlock()
		return c, nil
	}
	s.mu.Unlock()
	c, err := s.dial()
	if err != nil {
		<-s.sem
		return nil, fmt.Errorf("core: external store dial: %w", err)
	}
	return c, nil
}

// release returns a healthy connection to the pool (or closes it when
// the pool is full or the store closed) and frees the slot.
func (s *ConnStore) release(c client.Conn) {
	s.mu.Lock()
	if !s.closed && len(s.idle) < s.size {
		s.idle = append(s.idle, c)
		s.mu.Unlock()
		<-s.sem
		return
	}
	s.mu.Unlock()
	_ = c.Close()
	<-s.sem
}

// discard drops a broken connection and frees its slot.
func (s *ConnStore) discard(c client.Conn) {
	_ = c.Close()
	<-s.sem
}

// flushIdle closes every pooled idle connection (none hold sem slots).
func (s *ConnStore) flushIdle() {
	s.mu.Lock()
	stale := s.idle
	s.idle = nil
	s.mu.Unlock()
	for _, c := range stale {
		_ = c.Close()
	}
}

// redial replaces a just-discarded connection: peers pooled alongside
// a dead connection usually died with it (a server bounce), so the
// idle set is flushed before acquiring a (then freshly dialed) one.
func (s *ConnStore) redial() (client.Conn, error) {
	s.flushIdle()
	c, err := s.acquire()
	if err != nil {
		return nil, fmt.Errorf("core: external store redial: %w", err)
	}
	return c, nil
}

// settle routes a used connection back by health: live connections
// return to the pool, dead ones are dropped.
func (s *ConnStore) settle(c client.Conn) {
	if c.Ping() == nil {
		s.release(c)
		return
	}
	s.discard(c)
}

// safeToReplay reports whether sql may be re-executed even though an
// earlier attempt might have reached the server: only statements the
// parser proves read-only (SELECT) qualify.
func safeToReplay(sql string) bool {
	st, err := sqlmini.Parse(sql)
	if err != nil {
		return false
	}
	_, isSelect := st.(*sqlmini.SelectStmt)
	return isSelect
}

// txControl matches statements that manipulate session transaction
// state — meaningless through a pooled autocommit Exec, where each
// statement may land on a different connection and a BEGIN would park
// an open transaction in the pool for an unrelated borrower.
func txControl(sql string) bool {
	i := 0
	for i < len(sql) && (sql[i] == ' ' || sql[i] == '\t' || sql[i] == '\n' || sql[i] == '\r') {
		i++
	}
	rest := sql[i:]
	for _, kw := range [...]string{"BEGIN", "COMMIT", "ROLLBACK"} {
		if len(rest) < len(kw) || !strings.EqualFold(rest[:len(kw)], kw) {
			continue
		}
		if len(rest) == len(kw) {
			return true
		}
		// Word boundary: don't trip on identifiers sharing the prefix.
		c := rest[len(kw)]
		if !(c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
			return true
		}
	}
	return false
}

// Exec implements Store. Transaction control is rejected: the pool
// gives each statement its own connection, so session transactions
// must go through Begin (TxStore), which pins one.
func (s *ConnStore) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	if txControl(sql) {
		return nil, fmt.Errorf("core: external store: transaction control via Exec is not supported on a pooled store; use Begin()")
	}
	c, err := s.acquire()
	if err != nil {
		return nil, err
	}
	res, err := c.Exec(sql, args...)
	if err == nil {
		s.release(c)
		return toStoreResult(res), nil
	}
	// A live connection answering a ping means the error was the
	// statement's own (constraint violation, bad SQL, ...): pass it
	// through and keep the connection.
	if c.Ping() == nil {
		s.release(c)
		return nil, err
	}
	s.discard(c)
	if !errors.Is(err, client.ErrStatementNotSent) && !safeToReplay(sql) {
		// The statement may have executed before the connection died;
		// replaying could double-apply it. Idle peers pooled alongside
		// the dead connection usually died with it (a server bounce):
		// flush them so the NEXT statements dial fresh instead of each
		// tripping over another corpse.
		s.flushIdle()
		return nil, fmt.Errorf("%w: %v", ErrExecOutcomeUnknown, err)
	}
	// Provably unexecuted (never sent) or provably harmless (read-only):
	// one retry on a fresh dial.
	c2, dialErr := s.redial()
	if dialErr != nil {
		return nil, dialErr
	}
	res, err = c2.Exec(sql, args...)
	if err != nil {
		// The retry's failure needs the same classification as the
		// first attempt: a caller told "not ErrExecOutcomeUnknown"
		// would treat a mutating statement as provably unapplied.
		if c2.Ping() == nil {
			s.release(c2)
			return nil, err
		}
		s.discard(c2)
		if !errors.Is(err, client.ErrStatementNotSent) && !safeToReplay(sql) {
			return nil, fmt.Errorf("%w: %v", ErrExecOutcomeUnknown, err)
		}
		return nil, err // provably unexecuted (or harmless); no third try
	}
	s.release(c2)
	return toStoreResult(res), nil
}

// Query implements row-returning statements (same path as Exec).
func (s *ConnStore) Query(sql string, args ...any) (*sqlmini.Result, error) {
	return s.Exec(sql, args...)
}

// Begin implements TxStore: the transaction owns one pooled connection
// until Commit/Rollback (per-tx affinity), so concurrent plain
// statements and other transactions proceed on their own connections.
func (s *ConnStore) Begin() (Tx, error) {
	c, err := s.acquire()
	if err != nil {
		return nil, err
	}
	if err := c.Begin(); err != nil {
		if !errors.Is(err, client.ErrStatementNotSent) && c.Ping() == nil {
			s.release(c)
			return nil, err
		}
		s.discard(c)
		// BEGIN has no effect worth preserving; retry once on a fresh
		// connection.
		c, err = s.redial()
		if err != nil {
			return nil, err
		}
		if err := c.Begin(); err != nil {
			s.settle(c)
			return nil, err
		}
	}
	return &connTx{s: s, c: c}, nil
}

type connTx struct {
	s      *ConnStore
	c      client.Conn
	done   bool
	broken bool
}

func (tx *connTx) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	if tx.broken {
		return nil, fmt.Errorf("%w: transaction connection already lost", ErrExecOutcomeUnknown)
	}
	res, err := tx.c.Exec(sql, args...)
	if err != nil {
		if tx.c.Ping() != nil {
			tx.broken = true
			tx.s.flushIdle() // idle peers likely died with it
			return nil, fmt.Errorf("%w: %v", ErrExecOutcomeUnknown, err)
		}
		return nil, err
	}
	return toStoreResult(res), nil
}

func (tx *connTx) Query(sql string, args ...any) (*sqlmini.Result, error) {
	return tx.Exec(sql, args...)
}

func (tx *connTx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	if tx.broken {
		tx.s.discard(tx.c)
		// The remote rolls the open transaction back when the dead
		// session unwinds, but we cannot observe that: ambiguous.
		return fmt.Errorf("%w: commit on a lost transaction connection", ErrExecOutcomeUnknown)
	}
	if err := tx.c.Commit(); err != nil {
		if tx.c.Ping() != nil {
			tx.s.discard(tx.c)
			return fmt.Errorf("%w: %v", ErrExecOutcomeUnknown, err)
		}
		// A failed COMMIT on a live connection must not park a session
		// that is still inside (or aborted within) a transaction: later
		// borrowers would silently execute inside it. Only a connection
		// that provably left the transaction goes back to the pool.
		if tx.c.InTx() {
			tx.s.discard(tx.c)
		} else {
			tx.s.release(tx.c)
		}
		return err
	}
	tx.s.release(tx.c)
	return nil
}

func (tx *connTx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	if tx.broken {
		// A lost connection aborts the remote transaction anyway.
		tx.s.discard(tx.c)
		return nil
	}
	err := tx.c.Rollback()
	if err != nil {
		if tx.c.Ping() != nil {
			tx.s.discard(tx.c)
			return nil // connection death == rollback
		}
		if tx.c.InTx() {
			tx.s.discard(tx.c) // see Commit: never pool an open tx
			return err
		}
	}
	tx.s.release(tx.c)
	return err
}

// ExecBatch implements BatchStore. When the driver connection supports
// batch frames (client.BatchConn — the dbms native driver does), the
// whole list travels in ONE wire round trip and executes atomically on
// the server. Otherwise the list runs statement-by-statement on one
// pinned connection inside BEGIN/COMMIT — still atomic, at N+2 round
// trips. Mid-batch connection loss is never replayed (batches carry
// mutations); it surfaces as ErrExecOutcomeUnknown.
func (s *ConnStore) ExecBatch(stmts []Statement) ([]*sqlmini.Result, error) {
	c, err := s.acquire()
	if err != nil {
		return nil, err
	}
	if bc, ok := c.(client.BatchConn); ok {
		rs, err := bc.ExecBatch(true, stmts)
		if err == nil {
			s.release(c)
			out := make([]*sqlmini.Result, len(rs))
			for i, r := range rs {
				out[i] = toStoreResult(r)
			}
			return out, nil
		}
		if c.Ping() == nil {
			s.release(c)
			return nil, err
		}
		s.discard(c)
		s.flushIdle() // idle peers likely died with it (server bounce)
		if errors.Is(err, client.ErrStatementNotSent) {
			// The frame never left: nothing executed; the caller may
			// retry, but we do not auto-replay mutating batches.
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrExecOutcomeUnknown, err)
	}
	// Non-batch connection: emulate atomicity with an explicit
	// transaction pinned to this connection. The release/Begin pair is
	// not a wasted dial: release pushes onto the idle stack and Begin's
	// acquire pops from it, so absent contention Begin reuses this very
	// connection.
	s.release(c)
	var out []*sqlmini.Result
	err = RunAtomic(s, func(tx Tx) error {
		for i, st := range stmts {
			res, err := tx.Exec(st.SQL, st.Args...)
			if err != nil {
				out = nil
				return fmt.Errorf("core: batch statement %d: %w", i+1, err)
			}
			out = append(out, res)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func toStoreResult(res *client.Result) *sqlmini.Result {
	return &sqlmini.Result{Cols: res.Cols, Rows: res.Rows, Affected: res.Affected}
}

// Close releases all pooled connections. In-flight borrowers settle
// their connections afterwards (closed on release).
func (s *ConnStore) Close() {
	s.mu.Lock()
	idle := s.idle
	s.idle = nil
	s.closed = true
	s.mu.Unlock()
	for _, c := range idle {
		_ = c.Close()
	}
}
