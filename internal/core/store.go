package core

import (
	"fmt"
	"sync"

	"repro/internal/client"
	"repro/internal/sqlmini"
)

// Store abstracts where the Drivolution schema lives. The paper's three
// deployment shapes map onto two implementations:
//
//   - LocalStore: the schema sits in an embedded/in-process database —
//     the in-database server (§4.1.2, sharing the DBMS's own sqlmini
//     instance) and the standalone server (§4.1.4, "use an embedded
//     database that does not require driver upgrades").
//   - ConnStore: the schema sits in a remote legacy DBMS reached through
//     a conventional driver connection — the external server (§4.1.3,
//     Figure 2).
type Store interface {
	// Exec runs one SQL statement against the schema's database.
	Exec(sql string, args ...any) (*sqlmini.Result, error)
}

// GenerationStore is implemented by stores that can report a cheap,
// strictly monotonic counter covering mutations of the drivers and
// driver_permission tables. The server's in-memory driver catalog is
// valid exactly as long as the generation is unchanged, which makes
// steady-state grants metadata-cache hits with zero SQL. Stores that
// cannot observe remote mutations (ConnStore, where any peer may write
// to the legacy database) simply don't implement it and the server
// falls back to per-request SQL matchmaking.
type GenerationStore interface {
	Store
	// Generation changes whenever the drivers or driver_permission
	// tables change. Lease churn must NOT affect it.
	Generation() uint64
}

// TableVersionStore is optionally implemented by generation stores
// that can attribute the generation to individual tables. The catalog
// loader uses it to reload deltas: when only driver_permission moved,
// the (potentially blob-heavy) driver entries are carried over from
// the previous catalog untouched.
type TableVersionStore interface {
	// TableVersion counts mutations of one named table.
	TableVersion(name string) uint64
}

// LocalStore serves the schema from an in-process sqlmini database.
type LocalStore struct {
	DB *sqlmini.DB
}

// NewLocalStore wraps db.
func NewLocalStore(db *sqlmini.DB) *LocalStore { return &LocalStore{DB: db} }

// Exec implements Store.
func (s *LocalStore) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	return s.DB.Exec(sql, args...)
}

// Generation implements GenerationStore over the embedded database's
// per-table mutation counters. It lives on the DB, not this wrapper, so
// several LocalStores over one shared DB (replicated embedded servers,
// Figure 6; a TLS frontend sharing a plaintext server's schema) observe
// each other's admin mutations.
func (s *LocalStore) Generation() uint64 {
	return s.DB.TableVersions(DriversTable, PermissionTable)
}

// TableVersion implements TableVersionStore over the embedded
// database's per-table counters.
func (s *LocalStore) TableVersion(name string) uint64 {
	return s.DB.TableVersion(name)
}

// ConnStore serves the schema through a legacy driver connection to a
// remote database (Figure 2: "the server then connects to the database
// using a legacy database driver"). Statements serialize on the single
// connection; on connection failure it redials lazily.
type ConnStore struct {
	mu   sync.Mutex
	dial func() (client.Conn, error)
	conn client.Conn
}

// NewConnStore creates a store that obtains connections from dial.
func NewConnStore(dial func() (client.Conn, error)) *ConnStore {
	return &ConnStore{dial: dial}
}

// Exec implements Store.
func (s *ConnStore) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		c, err := s.dial()
		if err != nil {
			return nil, fmt.Errorf("core: external store dial: %w", err)
		}
		s.conn = c
	}
	res, err := s.conn.Exec(sql, args...)
	if err != nil {
		// A dead connection is retried once on a fresh dial; statement
		// errors pass through.
		if pingErr := s.conn.Ping(); pingErr != nil {
			_ = s.conn.Close()
			s.conn = nil
			c, dialErr := s.dial()
			if dialErr != nil {
				return nil, fmt.Errorf("core: external store redial: %w", dialErr)
			}
			s.conn = c
			res, err = s.conn.Exec(sql, args...)
		}
		if err != nil {
			return nil, err
		}
	}
	return &sqlmini.Result{Cols: res.Cols, Rows: res.Rows, Affected: res.Affected}, nil
}

// Close releases the underlying connection.
func (s *ConnStore) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil {
		_ = s.conn.Close()
		s.conn = nil
	}
}
