// Package core implements Drivolution itself — the paper's contribution:
// drivers stored in database tables (Table 1/2), distributed to clients
// over a DHCP-like lease protocol (Table 3/4), loaded dynamically by a
// client-side bootloader that substitutes for the driver, and upgraded,
// reconfigured, or revoked centrally with configurable connection
// transition policies.
//
// The package is organized as:
//
//   - policy.go    — renewal and expiration policy enums (Table 2)
//   - protocol.go  — DRIVOLUTION_* message codec (Table 3/4)
//   - schema.go    — drivers / driver_permission / leases DDL (Table 1/2)
//   - store.go     — schema access, local (in-database/standalone) or via
//     a legacy driver connection (external server, Figure 2)
//   - server.go    — the Drivolution Server: matchmaking, leases, transfer
//   - catalog.go   — versioned in-memory driver catalog + assembly cache
//     (the zero-SQL steady-state grant path)
//   - admin.go     — DBA operations: add/revoke drivers, permissions
//   - bootloader.go— the client bootloader: intercept connect, download,
//     verify, load, renew, transition connections
//   - conn.go      — managed connections implementing the policies
package core

import "fmt"

// RenewPolicy is the action a bootloader takes when a lease needs
// renewal (Table 2, renew_policy). Integer values match the paper's
// encoding exactly.
type RenewPolicy int

// Renewal policies (paper Table 2).
const (
	// RenewKeep continues using the same driver (paper: RENEW = 0).
	RenewKeep RenewPolicy = 0
	// RenewUpgrade downloads the new driver (paper: UPGRADE = 1).
	RenewUpgrade RenewPolicy = 1
	// RenewRevoke stops using the current driver with no replacement
	// (paper: REVOKE = 2).
	RenewRevoke RenewPolicy = 2
)

// String returns the paper's name for the policy.
func (p RenewPolicy) String() string {
	switch p {
	case RenewKeep:
		return "RENEW"
	case RenewUpgrade:
		return "UPGRADE"
	case RenewRevoke:
		return "REVOKE"
	default:
		return fmt.Sprintf("RenewPolicy(%d)", int(p))
	}
}

// Valid reports whether p is a defined policy value.
func (p RenewPolicy) Valid() bool { return p >= RenewKeep && p <= RenewRevoke }

// ExpirationPolicy is when existing connections transition off the old
// driver (Table 2, expiration_policy). Integer values match the paper.
type ExpirationPolicy int

// Expiration policies (paper Table 2).
const (
	// AfterClose waits for the application to close each connection
	// (paper: AFTER_CLOSE = 0).
	AfterClose ExpirationPolicy = 0
	// AfterCommit closes connections as soon as they are idle or their
	// in-flight transaction commits (paper: AFTER_COMMIT = 1).
	AfterCommit ExpirationPolicy = 1
	// Immediate terminates all connections at once (paper: IMMEDIATE = 2).
	Immediate ExpirationPolicy = 2
)

// String returns the paper's name for the policy.
func (p ExpirationPolicy) String() string {
	switch p {
	case AfterClose:
		return "AFTER_CLOSE"
	case AfterCommit:
		return "AFTER_COMMIT"
	case Immediate:
		return "IMMEDIATE"
	default:
		return fmt.Sprintf("ExpirationPolicy(%d)", int(p))
	}
}

// Valid reports whether p is a defined policy value.
func (p ExpirationPolicy) Valid() bool { return p >= AfterClose && p <= Immediate }

// TransferMethod restricts how driver code travels (Table 2,
// transfer_method): -1 means any, >= 0 selects a protocol id.
type TransferMethod int

// Transfer methods.
const (
	// TransferAny lets the bootloader and server negotiate (paper: -1).
	TransferAny TransferMethod = -1
	// TransferPlain is the in-band plaintext transfer (protocol id 0).
	TransferPlain TransferMethod = 0
	// TransferTLS requires the TLS channel (protocol id 1).
	TransferTLS TransferMethod = 1
)

// String names the transfer method.
func (t TransferMethod) String() string {
	switch t {
	case TransferAny:
		return "ANY"
	case TransferPlain:
		return "PLAIN"
	case TransferTLS:
		return "TLS"
	default:
		return fmt.Sprintf("TransferMethod(%d)", int(t))
	}
}
