package core

import (
	"fmt"
	"time"

	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/sqlmini"
)

// The admin API is what the paper's single-step upgrade uses: "The
// upgrade process drops from ten steps per client application to one
// simple insert operation on the Drivolution Server" (§3.2). Every
// mutation pushes a NotifyUpdate to dedicated-channel subscribers.

// AddDriver encodes, signs (when a signing key is configured), and
// inserts a driver image, returning its driver_id.
func (s *Server) AddDriver(img *driverimg.Image, format dbver.BinaryFormat) (int64, error) {
	if s.signKey != nil {
		img.Sign(s.signKey)
	}
	m := img.Manifest
	for attempt := 0; attempt < 16; attempt++ {
		s.idMu.Lock()
		if err := s.loadIDsLocked(); err != nil {
			s.idMu.Unlock()
			return 0, err
		}
		s.nextDrvID = int64(nextStridedID(uint64(s.nextDrvID), s.idOffset, s.idStride))
		id := s.nextDrvID
		s.idMu.Unlock()

		rec := DriverRecord{
			DriverID:   id,
			APIName:    m.API.Name,
			APIMajor:   m.API.Major,
			APIMinor:   m.API.Minor,
			Platform:   m.Platform,
			Version:    m.Version,
			BinaryCode: img.Encode(),
			Format:     string(format),
		}
		err := insertDriver(s.router(), rec)
		if err == nil {
			s.NotifyUpdate("", m.API.Name)
			return id, nil
		}
		if !isDuplicateKey(err) {
			return 0, fmt.Errorf("core: add driver: %w", err)
		}
		s.idMu.Lock()
		s.idsLoaded = false // shared store: another server took the id
		s.idMu.Unlock()
	}
	return 0, fmt.Errorf("core: driver id allocation kept colliding")
}

// DeleteDriver removes a driver row entirely ("Obsolete drivers can be
// disabled by either deleting them or setting the end_date", §4.1.1).
// Permission rows referencing it are removed too, in the same
// transaction on TxStore-capable stores: either the driver and its
// permissions all disappear, or — when the driver id is unknown or a
// statement fails — nothing does. On plain-Exec stores the unit
// degrades to RunAtomic's documented best-effort sequence.
func (s *Server) DeleteDriver(driverID int64) error {
	err := RunAtomic(s.store, func(tx Tx) error {
		if _, err := tx.Exec(
			`DELETE FROM `+PermissionTable+` WHERE driver_id = $id`,
			sqlmini.Args{"id": driverID}); err != nil {
			return fmt.Errorf("core: delete driver permissions: %w", err)
		}
		res, err := tx.Exec(
			`DELETE FROM `+DriversTable+` WHERE driver_id = $id`,
			sqlmini.Args{"id": driverID})
		if err != nil {
			return fmt.Errorf("core: delete driver: %w", err)
		}
		if res.Affected == 0 {
			return fmt.Errorf("core: no driver %d", driverID)
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.NotifyUpdate("", "")
	return nil
}

// SetPermission inserts a permission row (Table 2), allocating its id.
func (s *Server) SetPermission(p Permission) (int64, error) {
	if !p.RenewPolicy.Valid() || !p.ExpirationPolicy.Valid() {
		return 0, fmt.Errorf("core: invalid policy in permission (renew=%d, expiration=%d)",
			p.RenewPolicy, p.ExpirationPolicy)
	}
	for attempt := 0; attempt < 16; attempt++ {
		s.idMu.Lock()
		if err := s.loadIDsLocked(); err != nil {
			s.idMu.Unlock()
			return 0, err
		}
		s.nextPermID = int64(nextStridedID(uint64(s.nextPermID), s.idOffset, s.idStride))
		p.PermissionID = s.nextPermID
		s.idMu.Unlock()
		err := insertPermission(s.router(), p)
		if err == nil {
			s.NotifyUpdate(p.Database, "")
			return p.PermissionID, nil
		}
		if !isDuplicateKey(err) {
			return 0, fmt.Errorf("core: set permission: %w", err)
		}
		s.idMu.Lock()
		s.idsLoaded = false
		s.idMu.Unlock()
	}
	return 0, fmt.Errorf("core: permission id allocation kept colliding")
}

// ExpirePermission closes a permission row's validity window so it stops
// matching, by pinning start_date = end_date in the past. This keeps the
// paper's Sample-code-2 date predicate verbatim while still supporting
// "setting the end_date to the current_date" revocation.
func (s *Server) ExpirePermission(permissionID int64) error {
	past := time.Unix(0, 0).UTC()
	res, err := s.exec(`UPDATE `+PermissionTable+`
		SET start_date = $t, end_date = $t WHERE permission_id = $id`,
		sqlmini.Args{"t": past, "id": permissionID})
	if err != nil {
		return fmt.Errorf("core: expire permission: %w", err)
	}
	if res.Affected == 0 {
		return fmt.Errorf("core: no permission %d", permissionID)
	}
	s.NotifyUpdate("", "")
	return nil
}

// RevokeDriverForRenewals flips every permission row for driverID to the
// REVOKE policy, so clients are told to stop using it at their next
// renewal even though no replacement exists (paper §3.3).
func (s *Server) RevokeDriverForRenewals(driverID int64) error {
	_, err := s.exec(`UPDATE `+PermissionTable+`
		SET renew_policy = $revoke WHERE driver_id = $id`,
		sqlmini.Args{"revoke": int64(RenewRevoke), "id": driverID})
	if err != nil {
		return fmt.Errorf("core: revoke driver: %w", err)
	}
	s.NotifyUpdate("", "")
	return nil
}

// Drivers lists driver rows without their binaries (admin/experiments).
func (s *Server) Drivers() ([]DriverRecord, error) {
	//lint:scan-ok admin/experiment listing: whole-table read is the point
	res, err := s.exec(`SELECT driver_id, api_name, api_version_major,
		api_version_minor, platform, driver_version_major,
		driver_version_minor, driver_version_micro, binary_format
		FROM ` + DriversTable + ` ORDER BY driver_id`)
	if err != nil {
		return nil, err
	}
	idx := colIndex(res.Cols)
	out := make([]DriverRecord, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, DriverRecord{
			DriverID: row[idx["driver_id"]].Int(),
			APIName:  row[idx["api_name"]].Str(),
			APIMajor: intOrNeg(row[idx["api_version_major"]]),
			APIMinor: intOrNeg(row[idx["api_version_minor"]]),
			Platform: dbver.Platform(row[idx["platform"]].Str()),
			Version: dbver.Version{
				Major: intOrNeg(row[idx["driver_version_major"]]),
				Minor: intOrNeg(row[idx["driver_version_minor"]]),
				Micro: intOrNeg(row[idx["driver_version_micro"]]),
			},
			Format: row[idx["binary_format"]].Str(),
		})
	}
	return out, nil
}

// Permissions lists permission rows (admin/experiments).
func (s *Server) Permissions() ([]Permission, error) {
	//lint:scan-ok admin/experiment listing: whole-table read is the point
	res, err := s.exec(`SELECT permission_id, user, client_ip,
		database, driver_id, driver_options, start_date, end_date,
		lease_time_in_ms, renew_policy, expiration_policy, transfer_method
		FROM ` + PermissionTable + ` ORDER BY permission_id`)
	if err != nil {
		return nil, err
	}
	return scanPermissionRows(res), nil
}
