package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/sqlmini"
)

func v2TestDB(t *testing.T) *sqlmini.DB {
	t.Helper()
	db := sqlmini.NewDB()
	db.MustExec(`CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)`)
	db.MustExec(`INSERT INTO t (id, v) VALUES (1, 10), (2, 20)`)
	return db
}

func countT(t *testing.T, st Store) int64 {
	t.Helper()
	res, err := st.Exec(`SELECT count(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows[0][0].Int()
}

// TestLocalStoreCapabilities: LocalStore advertises every v2 interface.
func TestLocalStoreCapabilities(t *testing.T) {
	var st Store = NewLocalStore(v2TestDB(t))
	if _, ok := st.(TxStore); !ok {
		t.Fatal("LocalStore must implement TxStore")
	}
	if _, ok := st.(StmtStore); !ok {
		t.Fatal("LocalStore must implement StmtStore")
	}
	if _, ok := st.(BatchStore); !ok {
		t.Fatal("LocalStore must implement BatchStore")
	}
	if _, ok := st.(GenerationStore); !ok {
		t.Fatal("LocalStore must implement GenerationStore")
	}
}

// TestLocalStoreTx: commit publishes, rollback reverts, reuse after
// finish errors.
func TestLocalStoreTx(t *testing.T) {
	st := NewLocalStore(v2TestDB(t))

	tx, err := st.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO t (id, v) VALUES (3, 30)`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := countT(t, st); n != 3 {
		t.Fatalf("after commit count = %d", n)
	}

	tx, err = st.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`DELETE FROM t WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE t SET v = 999 WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if n := countT(t, st); n != 3 {
		t.Fatalf("after rollback count = %d", n)
	}
	res, _ := st.Exec(`SELECT v FROM t WHERE id = 2`)
	if res.Rows[0][0].Int() != 20 {
		t.Fatal("rollback must revert the update")
	}
	if _, err := tx.Exec(`SELECT 1`); !errors.Is(err, ErrTxDone) {
		t.Fatalf("exec after rollback: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("commit after rollback: %v", err)
	}
}

// TestRunAtomicRollsBackOnError: fn's error reverts the whole unit on
// a TxStore.
func TestRunAtomicRollsBackOnError(t *testing.T) {
	st := NewLocalStore(v2TestDB(t))
	wantErr := errors.New("boom")
	err := RunAtomic(st, func(tx Tx) error {
		if _, err := tx.Exec(`DELETE FROM t WHERE id = 1`); err != nil {
			return err
		}
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if n := countT(t, st); n != 2 {
		t.Fatalf("failed unit must revert: count = %d", n)
	}
}

// plainStore strips every capability off an inner store: the
// third-party plain-Exec store the fallback adapters exist for.
type plainStore struct{ inner Store }

func (p plainStore) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	return p.inner.Exec(sql, args...)
}

// TestRunAtomicFallbackIsBestEffort documents the adapter's degraded
// semantics on plain stores: statements apply eagerly and an error
// does NOT revert them.
func TestRunAtomicFallbackIsBestEffort(t *testing.T) {
	st := plainStore{inner: NewLocalStore(v2TestDB(t))}
	wantErr := errors.New("boom")
	err := RunAtomic(st, func(tx Tx) error {
		if _, err := tx.Exec(`DELETE FROM t WHERE id = 1`); err != nil {
			return err
		}
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if n := countT(t, st); n != 1 {
		t.Fatalf("best-effort fallback applies eagerly: count = %d, want 1", n)
	}
}

// TestExecBatchOnFallback: statement-by-statement on plain stores,
// stopping at (and naming) the first failure.
func TestExecBatchOnFallback(t *testing.T) {
	st := plainStore{inner: NewLocalStore(v2TestDB(t))}
	rs, err := ExecBatchOn(st, []Statement{
		{SQL: `INSERT INTO t (id, v) VALUES (3, 30)`},
		{SQL: `SELECT count(*) FROM t`},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[1].Rows[0][0].Int() != 3 {
		t.Fatalf("results = %+v", rs)
	}
	_, err = ExecBatchOn(st, []Statement{
		{SQL: `INSERT INTO t (id, v) VALUES (4, 40)`},
		{SQL: `INSERT INTO t (id, v) VALUES (4, 40)`},
	})
	if err == nil || !errors.Is(err, sqlmini.ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
	if n := countT(t, st); n != 4 {
		t.Fatalf("fallback batch is best-effort: count = %d, want 4", n)
	}
}

// TestPrepareOn: native handle on StmtStore, Exec-backed on plain
// stores, identical results.
func TestPrepareOn(t *testing.T) {
	local := NewLocalStore(v2TestDB(t))
	_, connV1 := externalProto(t, 1)
	_, connV2 := externalProto(t, 2)
	// The same suite runs on every store shape: native local handles,
	// the plain-Exec fallback, ConnStore over remote v2 frames, and
	// ConnStore negotiated down to per-call SQL on a v1 session.
	for _, st := range []Store{local, plainStore{inner: local}, connV2, connV1} {
		h, err := PrepareOn(st, `SELECT v FROM t WHERE id = $id`)
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.Exec(sqlmini.Args{"id": int64(2)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int() != 20 {
			t.Fatalf("%T: rows = %+v", st, res.Rows)
		}
		_ = h.Close()
	}
}

// external boots a dbms server holding a "meta" database and returns a
// ConnStore dialing it over a pinned v1 driver.
func external(t *testing.T, opts ...ConnStoreOption) (*dbms.Server, *ConnStore) {
	t.Helper()
	return externalProto(t, 1, opts...)
}

// externalProto is external with the driver's protocol ceiling chosen:
// 1 yields a v1 session (no remote capabilities), 2 a full v2 session.
func externalProto(t *testing.T, proto uint16, opts ...ConnStoreOption) (*dbms.Server, *ConnStore) {
	t.Helper()
	db := sqlmini.NewDB()
	db.MustExec(`CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)`)
	db.MustExec(`INSERT INTO t (id, v) VALUES (1, 10), (2, 20)`)
	srv := dbms.NewServer("legacy", dbms.WithUser("svc", "pw"))
	srv.AddDatabase("meta", db)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	addr := srv.Addr()
	drv := dbms.NewNativeDriver(dbver.V(1, 0, 0), proto, dbms.WithProtocolFloor(1))
	store := NewConnStore(func() (client.Conn, error) {
		return drv.Connect("dbms://"+addr+"/meta", client.Props{"user": "svc", "password": "pw"})
	}, opts...)
	t.Cleanup(store.Close)
	return srv, store
}

// TestConnStoreTxAffinityAndBatch: transactions pin one connection and
// commit/rollback correctly; batches travel as one server-side frame.
func TestConnStoreTxAffinityAndBatch(t *testing.T) {
	srv, store := external(t)

	tx, err := store.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE t SET v = 99 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	// A plain statement during the open tx uses another connection and
	// must not see or disturb the tx (sqlmini sessions are atomic, not
	// isolated, so the uncommitted write IS visible — what matters is
	// that the statement doesn't block and the rollback reverts).
	if _, err := store.Exec(`SELECT count(*) FROM t`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	res, err := store.Exec(`SELECT v FROM t WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 10 {
		t.Fatal("rollback must revert the remote update")
	}

	before := srv.BatchesServed()
	rs, err := store.ExecBatch([]Statement{
		{SQL: `UPDATE t SET v = v + 1 WHERE id = 1`},
		{SQL: `SELECT v FROM t WHERE id = 1`},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].Rows[0][0].Int() != 11 {
		t.Fatalf("batch results = %+v", rs)
	}
	if got := srv.BatchesServed() - before; got != 1 {
		t.Fatalf("batch frames = %d, want 1 (one wire round trip)", got)
	}

	// A failing batch rolls back server-side.
	if _, err := store.ExecBatch([]Statement{
		{SQL: `UPDATE t SET v = 0 WHERE id = 1`},
		{SQL: `INSERT INTO t (id, v) VALUES (1, 1)`},
	}); err == nil {
		t.Fatal("batch must fail")
	}
	res, _ = store.Exec(`SELECT v FROM t WHERE id = 1`)
	if res.Rows[0][0].Int() != 11 {
		t.Fatal("failed batch must leave no partial effects")
	}
}

// TestConnStoreConcurrentStatements: the pool removes the old
// single-connection head-of-line blocking — concurrent statements all
// succeed (and concurrent transactions don't deadlock each other).
func TestConnStoreConcurrentStatements(t *testing.T) {
	_, store := external(t, WithPoolSize(3))
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%8 == 0 {
				err := RunAtomic(store, func(tx Tx) error {
					_, err := tx.Exec(`SELECT count(*) FROM t`)
					return err
				})
				errs <- err
				return
			}
			_, err := store.Exec(`SELECT count(*) FROM t`)
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestConnStoreRedialSemantics is the redial-correctness contract:
// after the legacy database bounces, a SELECT (provably replayable)
// retries transparently, while a mutation that died mid-flight
// surfaces ErrExecOutcomeUnknown instead of being double-applied.
func TestConnStoreRedialSemantics(t *testing.T) {
	srv, store := external(t)
	// Prime the pool with a connection, then bounce the server so that
	// connection is dead-but-pooled.
	if _, err := store.Exec(`SELECT count(*) FROM t`); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	bounce := func() {
		srv.Stop()
		if err := srv.Start(addr); err != nil {
			t.Fatal(err)
		}
	}

	bounce()
	res, err := store.Exec(`SELECT count(*) FROM t`)
	if err != nil {
		t.Fatalf("read-only statement must replay across a bounce: %v", err)
	}
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}

	// Dead pooled connection again, now with a mutation: ambiguous.
	bounce()
	_, err = store.Exec(`UPDATE t SET v = v + 1 WHERE id = 1`)
	if !errors.Is(err, ErrExecOutcomeUnknown) {
		t.Fatalf("mutation across a dead connection must be ambiguous, got %v", err)
	}
	// The store recovered: the next statement dials fresh and works,
	// and the update was NOT silently double-applied (it was never
	// applied at all here — the frame died with the old listener).
	res, err = store.Exec(`SELECT v FROM t WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 10 {
		t.Fatalf("v = %d, want 10 (no double-apply, no ghost apply)", got)
	}
}

// TestConnStoreStatementErrorKeepsConnection: SQL-level errors pass
// through without burning the connection or triggering replay.
func TestConnStoreStatementErrorKeepsConnection(t *testing.T) {
	_, store := external(t)
	if _, err := store.Exec(`INSERT INTO t (id, v) VALUES (1, 1)`); err == nil {
		t.Fatal("duplicate insert must fail")
	} else if errors.Is(err, ErrExecOutcomeUnknown) {
		t.Fatalf("statement error misclassified as connection loss: %v", err)
	}
	if n := countT(t, store); n != 2 {
		t.Fatalf("count = %d", n)
	}
}

// TestCountingStorePreservesSemantics: wrapping any store must not
// change observable behavior, only count it — including capability
// fallbacks on plain stores.
func TestCountingStorePreservesSemantics(t *testing.T) {
	// Over a capable store: real transaction semantics.
	cs := NewCountingStore(NewLocalStore(v2TestDB(t)))
	err := RunAtomic(cs, func(tx Tx) error {
		if _, err := tx.Exec(`DELETE FROM t WHERE id = 1`); err != nil {
			return err
		}
		return fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := countT(t, cs); n != 2 {
		t.Fatalf("counting wrapper must preserve rollback: count = %d", n)
	}
	if cs.Txs() != 1 || cs.Statements() < 2 {
		t.Fatalf("counters: txs=%d statements=%d", cs.Txs(), cs.Statements())
	}

	// Over a plain store: best-effort semantics, same as unwrapped.
	cp := NewCountingStore(plainStore{inner: NewLocalStore(v2TestDB(t))})
	err = RunAtomic(cp, func(tx Tx) error {
		if _, err := tx.Exec(`DELETE FROM t WHERE id = 1`); err != nil {
			return err
		}
		return fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := countT(t, cp); n != 1 {
		t.Fatalf("counting wrapper over plain store stays best-effort: count = %d", n)
	}

	// Batches: one round trip on capable stores, N on plain ones.
	cs.Reset()
	if _, err := cs.ExecBatch([]Statement{{SQL: `SELECT 1`}, {SQL: `SELECT 2`}}); err != nil {
		t.Fatal(err)
	}
	if cs.RoundTrips() != 1 || cs.Statements() != 2 {
		t.Fatalf("capable batch: roundtrips=%d statements=%d", cs.RoundTrips(), cs.Statements())
	}
	cp.Reset()
	if _, err := cp.ExecBatch([]Statement{{SQL: `SELECT 1`}, {SQL: `SELECT 2`}}); err != nil {
		t.Fatal(err)
	}
	if cp.RoundTrips() != 2 || cp.Statements() != 2 {
		t.Fatalf("plain batch: roundtrips=%d statements=%d", cp.RoundTrips(), cp.Statements())
	}
}

// TestConnStoreRejectsTxControlViaExec: on a pooled store, session
// transaction state must go through Begin — a BEGIN slipped through
// plain Exec would park an open transaction in the pool for an
// unrelated borrower.
func TestConnStoreRejectsTxControlViaExec(t *testing.T) {
	_, store := external(t)
	for _, sql := range []string{"BEGIN", "  commit", "ROLLBACK", "\trollback work"} {
		if _, err := store.Exec(sql); err == nil {
			t.Fatalf("Exec(%q) must be rejected", sql)
		}
	}
	// Statements merely sharing a keyword prefix pass through.
	if _, err := store.Exec("SELECT count(*) FROM t"); err != nil {
		t.Fatal(err)
	}
}
