package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/faultnet"
	"repro/internal/sqlmini"
)

// chaosSeed resolves the soak's seed: CHAOS_SEED reproduces a failed
// run exactly, otherwise each run explores a fresh schedule. The seed
// is always logged so any failure is replayable.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		s, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", v, err)
		}
		t.Logf("chaos seed %d (from CHAOS_SEED)", s)
		return s
	}
	s := time.Now().UnixNano()
	t.Logf("chaos seed %d (rerun with CHAOS_SEED=%d)", s, s)
	return s
}

// chaosDuration resolves the storm length: short and default runs stay
// CI-friendly; CHAOS_DURATION (a Go duration) stretches the soak for
// `make chaos` seed sweeps.
func chaosDuration(t *testing.T) time.Duration {
	t.Helper()
	if v := os.Getenv("CHAOS_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("CHAOS_DURATION=%q: %v", v, err)
		}
		return d
	}
	if testing.Short() {
		return 800 * time.Millisecond
	}
	return 1500 * time.Millisecond
}

// TestChaosSoak is the capstone of the failure contract: a small fleet
// of bootloaders bootstraps and renews against a license-mode server
// through per-bootloader faultnet proxies while the schedule — derived
// entirely from one logged seed — injects connection resets at byte-
// and frame-boundaries, partitions and heals links, and restarts the
// server mid-storm. Throughout and afterwards it asserts the
// invariants the paper's robustness story rests on:
//
//   - the §5.4.2 license cap is never exceeded (sampled continuously,
//     and no driver ever carries two live leases);
//   - the store stays consistent: every lease row references an
//     existing driver and carries a sane time window (no partial
//     grant writes survive a reset);
//   - a bootloader cut off from the control plane demonstrably keeps
//     serving its loaded driver (§4.1.3) — the degradation pin;
//   - after the network heals, the fleet converges: every bootloader
//     either renews successfully or was honestly revoked by a license
//     denial (a legal §5.4.2 outcome under expiry pressure);
//   - nothing leaks: goroutines return to the pre-test baseline.
func TestChaosSoak(t *testing.T) {
	seed := chaosSeed(t)
	dur := chaosDuration(t)
	base := runtime.NumGoroutine()

	// --- the world: target DBMS, license-mode server, driver images ---
	appDB := sqlmini.NewDB()
	appDB.MustExec(`CREATE TABLE items (id INTEGER NOT NULL PRIMARY KEY, name VARCHAR)`)
	appDB.MustExec(`INSERT INTO items (id, name) VALUES (1, 'widget')`)
	target := dbms.NewServer("prod-db",
		dbms.WithUser("app", "app-pw"), dbms.WithProtocolVersion(1))
	target.AddDatabase("prod", appDB)
	if err := target.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(target.Stop)
	appURL := "dbms://" + target.Addr() + "/prod"

	const fleet = 4
	const licenses = fleet + 2 // headroom: lost-offer orphan leases live until expiry

	store := NewLocalStore(sqlmini.NewDB())
	srv, err := NewServer("chaos", store,
		WithLicenseMode(),
		WithDefaultLease(120*time.Millisecond),
		WithHandshakeTimeout(300*time.Millisecond),
		WithWriteTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	addr := srv.Addr()

	rt := driverimg.NewRuntime()
	rt.Register(dbms.DriverKind, dbms.ImageFactory())
	for i := 0; i < licenses; i++ {
		payload := make([]byte, 256)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		img := &driverimg.Image{
			Manifest: driverimg.Manifest{
				Kind:            dbms.DriverKind,
				API:             dbver.APIOf("JDBC", 3, 0),
				Version:         dbver.V(1, 0, i),
				ProtocolVersion: 1,
				Options:         map[string]string{"user": "app", "password": "app-pw"},
			},
			Payload: payload,
		}
		if _, err := srv.AddDriver(img, dbver.FormatImage); err != nil {
			t.Fatal(err)
		}
	}

	// --- the fleet, each behind its own fault-injecting proxy ---
	planner := func(i int, rng *rand.Rand) faultnet.Plan {
		switch rng.Intn(6) {
		case 0:
			return faultnet.Plan{Up: faultnet.Faults{CutAfterFrames: 1 + rng.Intn(4)}}
		case 1:
			return faultnet.Plan{Down: faultnet.Faults{CutAfterBytes: int64(20 + rng.Intn(400))}}
		default:
			return faultnet.Plan{}
		}
	}
	proxies := make([]*faultnet.Proxy, fleet)
	bls := make([]*Bootloader, fleet)
	for i := range proxies {
		p, err := faultnet.NewProxy(addr, seed+int64(i))
		if err != nil {
			t.Fatal(err)
		}
		p.SetPlanner(planner)
		t.Cleanup(p.Close)
		proxies[i] = p
		b := NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
			[]string{p.Addr()}, rt,
			WithCredentials("app", "app-pw"),
			WithClientID(fmt.Sprintf("chaos-%d", i)),
			WithDialTimeout(400*time.Millisecond),
			WithRetryInterval(15*time.Millisecond))
		t.Cleanup(b.Close)
		bls[i] = b
	}

	// Bootstrap through the fire: a doomed connection just means another
	// attempt on the shared backoff schedule.
	conns := make([]client.Conn, fleet)
	for i, b := range bls {
		deadline := time.Now().Add(10 * time.Second)
		for {
			c, err := b.Connect(appURL, nil)
			if err == nil {
				conns[i] = c
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("bootloader %d never bootstrapped: %v", i, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// --- degradation pin (§4.1.3): full control-plane partition must
	// not touch the data plane ---
	proxies[0].Partition()
	if err := bls[0].ForceRenew("prod"); err == nil {
		t.Fatal("renewal succeeded through a fully partitioned control plane")
	}
	for j := 0; j < 10; j++ {
		if _, err := conns[0].Query(`SELECT name FROM items WHERE id = 1`); err != nil {
			t.Fatalf("cut-off bootloader must keep serving its driver (§4.1.3), query %d failed: %v", j, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	proxies[0].Heal()

	// --- continuous invariant monitor + lease reaper ---
	var monWG sync.WaitGroup
	monStop := make(chan struct{})
	var capViolations, maxInUse atomic.Int32
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-monStop:
				return
			case <-tick.C:
			}
			n, err := srv.LicensesInUse()
			if err != nil {
				continue
			}
			if int32(n) > maxInUse.Load() {
				maxInUse.Store(int32(n))
			}
			if n > licenses {
				capViolations.Add(1)
			}
		}
	}()
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		tick := time.NewTicker(40 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-monStop:
				return
			case <-tick.C:
			}
			_, _ = srv.ReapExpiredLeases()
		}
	}()

	// --- application workload riding the storm; like any real client it
	// redials through the bootloader when a driver swap or revocation
	// retires its connection ---
	var qOK, qErr atomic.Int64
	wlStop := make(chan struct{})
	var wlWG sync.WaitGroup
	for i := 0; i < fleet; i++ {
		wlWG.Add(1)
		go func(i int) {
			defer wlWG.Done()
			conn := conns[i]
			for {
				select {
				case <-wlStop:
					return
				default:
				}
				if conn == nil {
					c, err := bls[i].Connect(appURL, nil)
					if err != nil {
						qErr.Add(1)
						time.Sleep(5 * time.Millisecond)
						continue
					}
					conn = c
				}
				if _, err := conn.Query(`SELECT name FROM items WHERE id = 1`); err != nil {
					qErr.Add(1)
					_ = conn.Close()
					conn = nil
				} else {
					qOK.Add(1)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(i)
	}

	// --- the storm: seed-driven partition/heal cycles with a server
	// restart in the middle ---
	rng := rand.New(rand.NewSource(seed))
	stormEnd := time.Now().Add(dur)
	restartAt := time.Now().Add(dur / 2)
	restarted := false
	for time.Now().Before(stormEnd) {
		p := proxies[rng.Intn(fleet)]
		switch rng.Intn(4) {
		case 0:
			p.Partition()
		case 1:
			p.PartitionOneWay(faultnet.Down)
		default:
			p.Heal()
		}
		if !restarted && time.Now().After(restartAt) {
			restarted = true
			srv.Stop()
			time.Sleep(30 * time.Millisecond)
			for try := 0; ; try++ {
				if err := srv.Start(addr); err == nil {
					break
				} else if try > 50 {
					t.Fatalf("server restart at %s failed: %v", addr, err)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
		time.Sleep(time.Duration(15+rng.Intn(40)) * time.Millisecond)
	}
	if !restarted {
		t.Fatal("storm too short: the mid-storm server restart never ran")
	}
	for _, p := range proxies {
		p.Heal()
	}

	// --- convergence: every bootloader renews or was honestly revoked ---
	converged, revoked := 0, 0
	for i, b := range bls {
		deadline := time.Now().Add(5 * time.Second)
		for {
			err := b.ForceRenew("prod")
			if err == nil {
				converged++
				break
			}
			if errors.Is(err, ErrNoDriverAvailable) {
				// Terminal revocation: a license denial during the storm
				// is a legal §5.4.2 outcome, not a liveness failure.
				revoked++
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("bootloader %d neither converged nor revoked: %v", i, err)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	if converged == 0 {
		t.Fatal("no bootloader converged after the network healed")
	}

	close(wlStop)
	wlWG.Wait()
	close(monStop)
	monWG.Wait()

	if n := capViolations.Load(); n > 0 {
		t.Errorf("license cap exceeded in %d samples: %d in use > %d licenses", n, maxInUse.Load(), licenses)
	}
	if qOK.Load() == 0 {
		t.Error("application workload made no progress at all during the storm")
	}

	// --- store consistency: no partial grant writes survived ---
	res, err := store.Exec(`SELECT driver_id FROM ` + DriversTable)
	if err != nil {
		t.Fatal(err)
	}
	driverIDs := make(map[int64]bool, len(res.Rows))
	for _, row := range res.Rows {
		driverIDs[row[0].Int()] = true
	}
	leases, err := srv.Leases()
	if err != nil {
		t.Fatal(err)
	}
	liveByDriver := make(map[int64]int)
	now := time.Now()
	for _, l := range leases {
		if !driverIDs[l.DriverID] {
			t.Errorf("lease %d references driver %d which does not exist", l.LeaseID, l.DriverID)
		}
		if !l.ExpiresAt.After(l.GrantedAt) {
			t.Errorf("lease %d has inverted window: granted %v expires %v", l.LeaseID, l.GrantedAt, l.ExpiresAt)
		}
		if !l.Released && l.ExpiresAt.After(now) {
			liveByDriver[l.DriverID]++
		}
	}
	for id, n := range liveByDriver {
		if n > 1 {
			t.Errorf("driver %d holds %d live leases; license mode allows one", id, n)
		}
	}

	t.Logf("soak: %d queries ok, %d failed; max licenses in use %d/%d; fleet %d converged / %d revoked; %d lease rows",
		qOK.Load(), qErr.Load(), maxInUse.Load(), licenses, converged, revoked, len(leases))

	// --- teardown and goroutine-leak check ---
	for _, c := range conns {
		_ = c.Close()
	}
	for _, b := range bls {
		b.Close()
	}
	for _, p := range proxies {
		p.Close()
	}
	srv.Stop()
	target.Stop()
	settle := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			break
		}
		if time.Now().After(settle) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live vs %d at start\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(25 * time.Millisecond)
	}
}
