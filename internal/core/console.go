package core

import (
	"fmt"
	"sync"

	"repro/internal/client"
	"repro/internal/dbver"
	"repro/internal/driverimg"
)

// Console is the multi-database face of the bootloader: one installed
// component that transparently manages a separate driver (and lease) per
// target database — the paper's Figure 3 DBA management console, where
// "a single Drivolution bootloader has to be installed in the management
// console" and each database provides its own driver. It implements
// client.Driver, so management tools configure it like any driver.
type Console struct {
	api      dbver.API
	platform dbver.Platform
	runtime  *driverimg.Runtime
	opts     []BootloaderOption

	mu      sync.Mutex
	loaders map[string]*Bootloader // key: drivolution server set + database
}

// NewConsole creates a console for one API/platform. Options apply to
// every per-database bootloader it spawns.
func NewConsole(api dbver.API, platform dbver.Platform, rt *driverimg.Runtime,
	opts ...BootloaderOption) *Console {
	return &Console{
		api:      api,
		platform: platform,
		runtime:  rt,
		opts:     opts,
		loaders:  make(map[string]*Bootloader),
	}
}

// Register associates a target database URL with its Drivolution server
// addresses (for fully Drivolution-compliant databases these are the
// databases themselves). Connects to that URL will bootstrap from those
// servers.
func (c *Console) Register(appURL string, servers []string, extra ...BootloaderOption) error {
	u, err := client.ParseURL(appURL)
	if err != nil {
		return err
	}
	key := consoleKey(u)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.loaders[key]; dup {
		return fmt.Errorf("drivolution: console already manages %s", key)
	}
	all := append(append([]BootloaderOption(nil), c.opts...), extra...)
	c.loaders[key] = NewBootloader(c.api, c.platform, servers, c.runtime, all...)
	return nil
}

func consoleKey(u *client.URL) string {
	return u.Hosts[0] + "/" + u.Database
}

// Name implements client.Driver.
func (c *Console) Name() string { return "drivolution-console" }

// Version implements client.Driver.
func (c *Console) Version() dbver.Version { return dbver.Version{} }

// Connect implements client.Driver, routing to the per-database
// bootloader.
func (c *Console) Connect(url string, props client.Props) (client.Conn, error) {
	u, err := client.ParseURL(url)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	b, ok := c.loaders[consoleKey(u)]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("drivolution: console has no registration for %s (call Register first)", consoleKey(u))
	}
	return b.Connect(url, props)
}

// BootloaderFor exposes the per-database bootloader (for renewals and
// stats in experiments).
func (c *Console) BootloaderFor(appURL string) *Bootloader {
	u, err := client.ParseURL(appURL)
	if err != nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loaders[consoleKey(u)]
}

// DriverVersions reports the loaded driver version per registration.
func (c *Console) DriverVersions() map[string]dbver.Version {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]dbver.Version, len(c.loaders))
	for k, b := range c.loaders {
		out[k] = b.Version()
	}
	return out
}

// Close shuts every per-database bootloader down.
func (c *Console) Close() {
	c.mu.Lock()
	loaders := make([]*Bootloader, 0, len(c.loaders))
	for _, b := range c.loaders {
		loaders = append(loaders, b)
	}
	c.mu.Unlock()
	for _, b := range loaders {
		b.Close()
	}
}
