package core

import (
	"errors"
	"time"

	"repro/internal/faultnet"
)

// newLoopBackoff builds the Backoff driving the persistent renewal
// and push loops. The default policy starts at retryInterval (so test
// cadences stay fast) and grows to 16× with jitter; attempt and time
// budgets are stripped either way, because a bootloader cut off from
// every server keeps serving its driver and keeps retrying (§4.1.3) —
// it never gives up.
func (b *Bootloader) newLoopBackoff() *faultnet.Backoff {
	p := b.backoffPol
	if p == (faultnet.Policy{}) {
		p = faultnet.Policy{Initial: b.retryInterval, Max: 16 * b.retryInterval,
			Factor: 2, Jitter: 0.5}
	}
	p.MaxAttempts, p.Budget = 0, 0
	return faultnet.NewBackoff(p)
}

// renewLoop is the bootloader's dedicated timer thread (paper §3.4.2:
// "bootloaders can use a dedicated thread as a timer to contact the
// Drivolution Server as soon as the timer expires"). It wakes at the
// renew-ahead point of the lease, on push notifications, and on explicit
// ForceRenew calls. Consecutive failures retry on the shared jittered
// backoff schedule instead of hammering the (already passed) renew-ahead
// point; a success resets the schedule.
func (b *Bootloader) renewLoop(database string) {
	defer b.wg.Done()
	bo := b.newLoopBackoff()
	var backoffWait time.Duration // >0 while in a failure streak
	for {
		b.mu.Lock()
		var wait time.Duration
		if b.cur != nil {
			renewAt := b.cur.expiresAt.Add(-time.Duration((1 - b.renewAhead) * float64(b.cur.leaseTime)))
			wait = time.Until(renewAt)
		} else {
			wait = b.retryInterval
		}
		revoked := b.revoked
		b.mu.Unlock()
		if revoked {
			return
		}
		if backoffWait > 0 {
			wait = backoffWait
		}
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		timer := time.NewTimer(wait)
		select {
		case <-b.stopCh:
			timer.Stop()
			return
		case <-b.wakeCh:
			timer.Stop()
		case <-timer.C:
		}
		if err := b.renewOnce(database); err != nil {
			if d, ok := bo.Next(); ok {
				backoffWait = d
			}
		} else {
			bo.Reset()
			backoffWait = 0
		}
	}
}

// ForceRenew triggers an immediate renewal attempt and returns its
// outcome; scenarios and tests use it instead of waiting for the timer.
func (b *Bootloader) ForceRenew(database string) error {
	return b.renewOnce(database)
}

// renewOnce performs one Table 4 renewal exchange and applies the
// client-side policy actions.
func (b *Bootloader) renewOnce(database string) error {
	// Snapshot the lease fields under b.mu: a concurrent renewal (timer
	// loop vs ForceRenew) rewrites them — including serverAddr when a
	// cluster redirect re-homes the lease — while we are off the lock.
	b.mu.Lock()
	cur := b.cur
	var serverAddr, checksum string
	var leaseID uint64
	if cur != nil {
		serverAddr, leaseID, checksum = cur.serverAddr, cur.leaseID, cur.checksum
	}
	b.mu.Unlock()
	if cur == nil {
		return ErrNoDriverAvailable
	}

	offer, blob, addr, err := b.fetch(serverAddr, database, leaseID, checksum)
	if err != nil {
		var pe *ProtocolError
		if !errors.As(err, &pe) {
			// Network failure — or a cluster redirect that could not name
			// a serving owner (*Redirect with no address): fail over to
			// another configured server (paper §5.3.2: bootloaders
			// "perform failover, if the first host in the list becomes
			// unavailable").
			for _, alt := range b.servers {
				if alt == serverAddr {
					continue
				}
				if o, bl2, served, e2 := b.fetch(alt, database, leaseID, checksum); e2 == nil || errors.As(e2, &pe) {
					offer, blob, err, addr = o, bl2, e2, served
					break
				}
			}
		}
	}
	if err != nil {
		var pe *ProtocolError
		if errors.As(err, &pe) {
			switch pe.Code {
			case ErrCodeNoLease:
				// The answering server does not know this lease — e.g. a
				// replicated embedded server that took over after its
				// peer died. DHCP-style recovery: acquire a fresh lease.
				return b.rebootstrap(addr, database, cur, checksum)
			case ErrCodeTransfer, ErrCodeInternal:
				// Transient or configuration trouble on the server side:
				// keep the working driver and retry later.
				b.addMetric(func(m *Metrics) { m.RenewFailures++ })
				b.logf("drivolution: renewal rejected (%v), keeping driver", pe)
				return pe
			}
			// DRIVOLUTION_ERROR: the driver is revoked with no
			// replacement. Apply the current expiration policy (Table 4's
			// REVOKE branch).
			b.logf("drivolution: lease %d revoked: %v", leaseID, pe)
			b.revokeCurrent(pe)
			return pe
		}
		// Server unreachable: keep the current driver and retry later
		// (paper §4.1.3: "the bootloader keeps its current implementation
		// until the Drivolution server is restarted").
		b.addMetric(func(m *Metrics) { m.RenewFailures++ })
		b.logf("drivolution: renewal failed (server unreachable), keeping driver: %v", err)
		return err
	}

	if !offer.HasDriver {
		// RENEW: same driver, new lease term.
		b.mu.Lock()
		if b.cur == cur {
			cur.expiresAt = time.Now().Add(offer.LeaseTime)
			cur.leaseTime = offer.LeaseTime
			cur.renewPol = offer.RenewPolicy
			cur.expirePol = offer.ExpirationPolicy
			cur.serverAddr = addr
		}
		b.mu.Unlock()
		b.addMetric(func(m *Metrics) { m.Renewals++ })
		return nil
	}

	// UPGRADE: load the new driver, route new connections to it, and
	// transition existing connections per the expiration policy.
	newLD, err := b.install(offer, blob, addr)
	if err != nil {
		b.logf("drivolution: upgrade install failed, keeping old driver: %v", err)
		return err
	}
	b.mu.Lock()
	if b.cur != cur { // concurrent swap; drop our work
		b.mu.Unlock()
		return nil
	}
	b.cur = newLD
	b.mu.Unlock()
	b.addMetric(func(m *Metrics) { m.Upgrades++ })
	b.logf("drivolution: upgraded driver %s -> %s (policy %s)",
		cur.drv.Version(), newLD.drv.Version(), offer.ExpirationPolicy)

	// "unload_old_driver" once its connections are transitioned.
	cur.transition(b, offer.ExpirationPolicy)
	return nil
}

// rebootstrap acquires a brand-new lease from addr when the old lease is
// unknown there. If the offered driver is content-identical to the
// running one, only the lease bookkeeping changes; otherwise the swap
// follows the offered expiration policy like any upgrade.
func (b *Bootloader) rebootstrap(addr, database string, cur *loadedDriver, checksum string) error {
	offer, blob, addr, err := b.fetch(addr, database, 0, checksum)
	if err != nil {
		var pe *ProtocolError
		if errors.As(err, &pe) {
			b.revokeCurrent(pe)
		}
		return err
	}
	if offer.HasDriver && offer.DriverChecksum != checksum {
		newLD, err := b.install(offer, blob, addr)
		if err != nil {
			return err
		}
		b.mu.Lock()
		if b.cur != cur {
			b.mu.Unlock()
			return nil
		}
		b.cur = newLD
		b.mu.Unlock()
		b.addMetric(func(m *Metrics) { m.Upgrades++ })
		cur.transition(b, offer.ExpirationPolicy)
		return nil
	}
	// Same content: adopt the fresh lease in place.
	b.mu.Lock()
	if b.cur == cur {
		cur.leaseID = offer.LeaseID
		cur.leaseTime = offer.LeaseTime
		cur.expiresAt = time.Now().Add(offer.LeaseTime)
		cur.renewPol = offer.RenewPolicy
		cur.expirePol = offer.ExpirationPolicy
		cur.serverAddr = addr
	}
	b.mu.Unlock()
	b.addMetric(func(m *Metrics) { m.Renewals++ })
	return nil
}

// revokeCurrent applies the REVOKE branch: block new connections and
// transition existing ones per the current expiration policy.
func (b *Bootloader) revokeCurrent(cause error) {
	b.mu.Lock()
	cur := b.cur
	var pol ExpirationPolicy
	if cur != nil {
		pol = cur.expirePol
	}
	b.cur = nil
	b.revoked = true
	b.revokeErr = errors.Join(ErrNoDriverAvailable, cause)
	b.mu.Unlock()
	if cur == nil {
		return
	}
	b.addMetric(func(m *Metrics) { m.Revocations++ })
	cur.transition(b, pol)
}

// pushLoop maintains the dedicated update channel (§3.2). A NOTIFY wakes
// the renew loop immediately. Re-subscription after failures follows the
// shared jittered backoff so a restarting server is not met by a
// lockstep subscriber storm.
func (b *Bootloader) pushLoop(database string) {
	defer b.wg.Done()
	bo := b.newLoopBackoff()
	for {
		select {
		case <-b.stopCh:
			return
		default:
		}
		b.mu.Lock()
		var addr string
		if b.cur != nil {
			addr = b.cur.serverAddr
		} else if len(b.servers) > 0 {
			addr = b.servers[0]
		}
		b.mu.Unlock()
		if addr == "" {
			if !bo.Sleep(b.stopCh) {
				return
			}
			continue
		}
		conn, err := b.dialServer(addr)
		if err != nil {
			if !bo.Sleep(b.stopCh) {
				return
			}
			continue
		}
		sub := subscribeMsg{Database: database, API: b.api.Name}
		if err := conn.Send(msgSubscribe, sub.encode()); err != nil {
			conn.Close()
			if !bo.Sleep(b.stopCh) {
				return
			}
			continue
		}
		// Channel is up: the next failure starts the schedule over.
		bo.Reset()
		// Reader: each notify triggers an immediate renewal.
		closed := make(chan struct{})
		go func() {
			<-b.stopCh
			select {
			case <-closed:
			default:
				conn.Close()
			}
		}()
		for {
			f, err := conn.Recv()
			if err != nil {
				close(closed)
				conn.Close()
				break
			}
			if f.Type == msgNotify {
				select {
				case b.wakeCh <- struct{}{}:
				default:
				}
			}
		}
		if !bo.Sleep(b.stopCh) {
			return
		}
	}
}

// ReleaseLease gives the lease back to the server (license mode,
// §5.4.2: "The bootloader can notify the Drivolution server when the
// driver is unloaded to give back its lease").
func (b *Bootloader) ReleaseLease() error {
	b.mu.Lock()
	cur := b.cur
	var serverAddr string
	var leaseID uint64
	if cur != nil {
		serverAddr, leaseID = cur.serverAddr, cur.leaseID
	}
	b.mu.Unlock()
	if cur == nil {
		return ErrNoDriverAvailable
	}
	conn, err := b.dialServer(serverAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(msgRelease, releaseMsg{LeaseID: leaseID}.encode()); err != nil {
		return err
	}
	f, err := conn.RecvTimeout(b.dialTimeout)
	if err != nil {
		return err
	}
	if f.Type != msgReleaseOK {
		if f.Type == msgError {
			pe, derr := decodeProtocolError(f.Payload)
			if derr == nil {
				return pe
			}
		}
		return errors.New("drivolution: release failed")
	}
	return nil
}
