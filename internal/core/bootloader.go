package core

import (
	"crypto/ed25519"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/faultnet"
	"repro/internal/wire"
)

// Bootloader errors surfaced to applications.
var (
	// ErrNoDriverAvailable is returned by Connect when the driver was
	// revoked with no replacement (paper §3.1.2: "the bootloader blocks
	// new connection requests and it returns errors explaining the
	// absence of a suitable driver").
	ErrNoDriverAvailable = errors.New("drivolution: no suitable driver available")
	// ErrNoServers is returned when no Drivolution server is configured
	// or reachable at first bootstrap.
	ErrNoServers = errors.New("drivolution: no Drivolution server reachable")
)

// Metrics counts bootloader lifecycle events; experiments and benchmarks
// read them through Bootloader.Stats.
type Metrics struct {
	Bootstraps    int64 // initial driver downloads
	Renewals      int64 // lease renewals keeping the same driver
	Upgrades      int64 // driver hot-swaps
	Revocations   int64 // drivers revoked with no replacement
	BytesFetched  int64 // driver bytes downloaded
	ForcedCloses  int64 // connections closed by IMMEDIATE/AFTER_COMMIT
	AbortedTx     int64 // in-flight transactions aborted by IMMEDIATE
	DeferredTx    int64 // connections drained after their commit (AFTER_COMMIT)
	RenewFailures int64 // renewal attempts that hit an unreachable server
}

// Bootloader is the client-side interceptor: it implements client.Driver
// so the application configures it exactly where a conventional driver
// would go, and it fetches, verifies, loads, renews, and hot-swaps the
// real driver underneath (paper §3.1.1). One bootloader instance per
// (API, platform, database credentials) — its feature set is fixed and
// minimal, which is why it "hardly ever needs to be updated".
type Bootloader struct {
	api      dbver.API
	platform dbver.Platform
	user     string
	password string
	clientID string

	servers          []string
	runtime          *driverimg.Runtime
	trustKey         ed25519.PublicKey
	tlsConf          *tls.Config
	dialTimeout      time.Duration
	renewAhead       float64 // renew when this fraction of the lease has elapsed
	retryInterval    time.Duration
	backoffPol       faultnet.Policy // zero = derived from retryInterval
	requiredPackages []string
	preferredVersion dbver.Version
	preferredFormat  string
	push             bool
	logf             func(format string, args ...any)

	mu        sync.Mutex
	cur       *loadedDriver
	revoked   bool
	revokeErr error
	started   bool
	stopCh    chan struct{}
	wakeCh    chan struct{}
	wg        sync.WaitGroup

	// Cached protocol connection to the current server, reused across
	// renewals so the steady-state lease traffic (§3.2) costs one round
	// trip, not a dial + round trip. Guarded by connMu for the whole
	// exchange; dropped on any transport error or dirty stream.
	connMu      sync.Mutex
	srvConn     *wire.Conn
	srvConnAddr string

	metMu sync.Mutex
	met   Metrics
}

// loadedDriver is one installed driver plus its lease and the live
// connections opened through it.
type loadedDriver struct {
	drv      client.Driver
	img      *driverimg.Image
	checksum string

	leaseID    uint64
	leaseTime  time.Duration
	expiresAt  time.Time
	renewPol   RenewPolicy
	expirePol  ExpirationPolicy
	serverAddr string

	mu    sync.Mutex
	conns map[*managedConn]struct{}
}

// BootloaderOption configures a Bootloader.
type BootloaderOption func(*Bootloader)

// WithTrustKey requires driver images to carry a valid ed25519 signature
// from the given public key (paper §3.1: "It is also possible to sign
// drivers, and have a separate trusted wrapper in the bootloader verify
// signatures").
func WithTrustKey(pub ed25519.PublicKey) BootloaderOption {
	return func(b *Bootloader) { b.trustKey = pub }
}

// WithTLS dials Drivolution servers over TLS, verifying their
// certificate against roots.
func WithTLS(conf *tls.Config) BootloaderOption {
	return func(b *Bootloader) { b.tlsConf = conf }
}

// WithCredentials sets the database credentials sent in requests.
func WithCredentials(user, password string) BootloaderOption {
	return func(b *Bootloader) { b.user = user; b.password = password }
}

// WithRequiredPackages requests on-demand driver assembly (§5.4.1).
func WithRequiredPackages(pkgs ...string) BootloaderOption {
	return func(b *Bootloader) { b.requiredPackages = pkgs }
}

// WithPreferredVersion restricts matchmaking to a driver version.
func WithPreferredVersion(v dbver.Version) BootloaderOption {
	return func(b *Bootloader) { b.preferredVersion = v }
}

// WithPreferredFormat restricts matchmaking to a binary format.
func WithPreferredFormat(f dbver.BinaryFormat) BootloaderOption {
	return func(b *Bootloader) { b.preferredFormat = string(f) }
}

// WithPushUpdates keeps a dedicated channel to the server so upgrades
// propagate immediately instead of at lease expiry (paper §3.2:
// "a dedicated channel ... allows the Drivolution Server to immediately
// signal that a new driver is available").
func WithPushUpdates() BootloaderOption {
	return func(b *Bootloader) { b.push = true }
}

// WithRenewAhead renews when the given fraction of the lease has elapsed
// (default 0.9).
func WithRenewAhead(frac float64) BootloaderOption {
	return func(b *Bootloader) { b.renewAhead = frac }
}

// WithRetryInterval sets the base cadence of the control-plane loops:
// the first retry delay after a failure, and the poll interval while
// no driver is loaded. Consecutive failures back off exponentially
// from this base (see WithBackoff).
func WithRetryInterval(d time.Duration) BootloaderOption {
	return func(b *Bootloader) { b.retryInterval = d }
}

// WithBackoff overrides the retry policy the renewal and push loops
// apply to consecutive failures. The default grows from retryInterval
// to 16× retryInterval with jitter, so a fleet cut off from its
// server spreads its reconnection attempts instead of storming back
// in lockstep.
func WithBackoff(p faultnet.Policy) BootloaderOption {
	return func(b *Bootloader) { b.backoffPol = p }
}

// WithDialTimeout bounds server dials.
func WithDialTimeout(d time.Duration) BootloaderOption {
	return func(b *Bootloader) { b.dialTimeout = d }
}

// WithClientID labels this bootloader instance in lease bookkeeping.
func WithClientID(id string) BootloaderOption {
	return func(b *Bootloader) { b.clientID = id }
}

// WithBootloaderLogger routes diagnostics; default silent.
func WithBootloaderLogger(logf func(format string, args ...any)) BootloaderOption {
	return func(b *Bootloader) { b.logf = logf }
}

// NewBootloader creates a bootloader for one API/platform that fetches
// drivers from the given Drivolution servers (several addresses enable
// the DISCOVER flow and failover). The runtime supplies driver-kind
// factories — the analog of having a JVM available to load classes into.
func NewBootloader(api dbver.API, platform dbver.Platform, servers []string,
	rt *driverimg.Runtime, opts ...BootloaderOption) *Bootloader {
	b := &Bootloader{
		api:           api,
		platform:      platform,
		servers:       append([]string(nil), servers...),
		runtime:       rt,
		dialTimeout:   5 * time.Second,
		renewAhead:    0.9,
		retryInterval: 250 * time.Millisecond,
		clientID:      "bootloader",
		logf:          func(string, ...any) {},
		stopCh:        make(chan struct{}),
		wakeCh:        make(chan struct{}, 1),
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Name implements client.Driver; the bootloader masquerades as the
// driver it loaded.
func (b *Bootloader) Name() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cur != nil {
		return b.cur.drv.Name()
	}
	return "drivolution-bootloader"
}

// Version implements client.Driver, reporting the loaded driver's
// version (zero before first bootstrap).
func (b *Bootloader) Version() dbver.Version {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cur != nil {
		return b.cur.drv.Version()
	}
	return dbver.Version{}
}

// CurrentChecksum reports the running driver's content identity.
func (b *Bootloader) CurrentChecksum() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cur == nil {
		return ""
	}
	return b.cur.checksum
}

// LeaseID reports the current lease (0 before bootstrap).
func (b *Bootloader) LeaseID() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cur == nil {
		return 0
	}
	return b.cur.leaseID
}

// ServerAddr reports the server currently holding this bootloader's
// lease ("" before bootstrap) — under clustering, the shard owner the
// last grant or redirect landed on.
func (b *Bootloader) ServerAddr() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cur == nil {
		return ""
	}
	return b.cur.serverAddr
}

// Stats snapshots the lifecycle metrics.
func (b *Bootloader) Stats() Metrics {
	b.metMu.Lock()
	defer b.metMu.Unlock()
	return b.met
}

func (b *Bootloader) addMetric(f func(*Metrics)) {
	b.metMu.Lock()
	f(&b.met)
	b.metMu.Unlock()
}

// Connect implements client.Driver: it intercepts the application's
// connect call, ensures a driver is installed (bootstrapping on first
// use), and delegates (paper §3.1.1: "It simply intercepts the connect
// method call of the API ... All other calls are passed through").
func (b *Bootloader) Connect(url string, props client.Props) (client.Conn, error) {
	u, err := client.ParseURL(url)
	if err != nil {
		return nil, err
	}
	ld, err := b.ensureDriver(u.Database)
	if err != nil {
		return nil, err
	}
	inner, err := ld.drv.Connect(url, props)
	if err != nil {
		return nil, err
	}
	mc := &managedConn{bl: b, ld: ld, conn: inner}
	ld.mu.Lock()
	ld.conns[mc] = struct{}{}
	ld.mu.Unlock()
	return mc, nil
}

// ensureDriver returns the installed driver, bootstrapping on first use.
func (b *Bootloader) ensureDriver(database string) (*loadedDriver, error) {
	b.mu.Lock()
	if b.revoked {
		err := b.revokeErr
		b.mu.Unlock()
		if err == nil {
			err = ErrNoDriverAvailable
		}
		return nil, err
	}
	if b.cur != nil {
		ld := b.cur
		b.mu.Unlock()
		return ld, nil
	}
	b.mu.Unlock()

	// Bootstrap outside the lock; serialize concurrent first-connects.
	ld, err := b.bootstrap(database)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cur != nil { // another goroutine won the race
		return b.cur, nil
	}
	b.cur = ld
	if !b.started {
		b.started = true
		b.wg.Add(1)
		go b.renewLoop(database)
		if b.push {
			b.wg.Add(1)
			go b.pushLoop(database)
		}
	}
	b.addMetric(func(m *Metrics) { m.Bootstraps++ })
	return b.cur, nil
}

// request builds the DRIVOLUTION_REQUEST for the given database.
func (b *Bootloader) request(database string, leaseID uint64, checksum string) Request {
	return Request{
		Database:         database,
		User:             b.user,
		Password:         b.password,
		API:              b.api,
		ClientPlatform:   b.platform,
		PreferredFormat:  b.preferredFormat,
		PreferredVersion: b.preferredVersion,
		RequiredPackages: b.requiredPackages,
		LeaseID:          leaseID,
		CurrentChecksum:  checksum,
		ClientID:         b.clientID,
	}
}

// dialServer opens a protocol connection, over TLS when configured.
func (b *Bootloader) dialServer(addr string) (*wire.Conn, error) {
	if b.tlsConf != nil {
		d := &net.Dialer{Timeout: b.dialTimeout}
		nc, err := tls.DialWithDialer(d, "tcp", addr, b.tlsConf)
		if err != nil {
			return nil, fmt.Errorf("drivolution: tls dial %s: %w", addr, err)
		}
		return wire.NewConn(nc), nil
	}
	return wire.Dial(addr, b.dialTimeout)
}

// discover probes every configured server (the DHCP-like broadcast,
// §3.1) and returns the address of the first one that answers with an
// offer.
func (b *Bootloader) discover(database string) (string, error) {
	if len(b.servers) == 0 {
		return "", ErrNoServers
	}
	if len(b.servers) == 1 {
		return b.servers[0], nil
	}
	type answer struct {
		addr string
		err  error
	}
	ch := make(chan answer, len(b.servers))
	req := b.request(database, 0, "").encode()
	for _, addr := range b.servers {
		go func(addr string) {
			// A clean exchange over the cached renewal connection settles
			// this server without a dial; a cached connection that turns
			// out dead falls through to a fresh dial like any other server
			// (DISCOVER is idempotent, so re-sending is safe).
			if offered, used, err := b.probeCached(addr, req); used && err == nil {
				if offered {
					ch <- answer{addr: addr}
				} else {
					ch <- answer{err: fmt.Errorf("drivolution: %s declined discover", addr)}
				}
				return
			}
			conn, err := b.dialServer(addr)
			if err != nil {
				ch <- answer{err: err}
				return
			}
			defer conn.Close()
			if err := conn.Send(msgDiscover, req); err != nil {
				ch <- answer{err: err}
				return
			}
			f, err := conn.RecvTimeout(b.dialTimeout)
			if err != nil {
				ch <- answer{err: err}
				return
			}
			if f.Type != msgOffer {
				ch <- answer{err: fmt.Errorf("drivolution: %s declined discover", addr)}
				return
			}
			ch <- answer{addr: addr}
		}(addr)
	}
	var firstErr error
	for range b.servers {
		a := <-ch
		if a.err == nil {
			return a.addr, nil
		}
		if firstErr == nil {
			firstErr = a.err
		}
	}
	return "", fmt.Errorf("%w: %v", ErrNoServers, firstErr)
}

// probeCached runs one DISCOVER probe over the persistent renewal
// connection when the bootloader still holds one to addr, instead of
// dialing a second connection to a server it is already talking to.
// used=false means no cached connection covered addr and the caller
// should dial. The connection is detached for the duration of the round
// trip so connMu is never held across network I/O: a concurrent fetch
// simply sees no cached connection and dials, rather than blocking up
// to dialTimeout behind a slow probe. A transport failure discards the
// connection (the next renewal redials); a clean exchange re-caches it.
func (b *Bootloader) probeCached(addr string, req []byte) (offered, used bool, err error) {
	b.connMu.Lock()
	if b.srvConn == nil || b.srvConnAddr != addr {
		b.connMu.Unlock()
		return false, false, nil
	}
	conn := b.srvConn
	b.srvConn, b.srvConnAddr = nil, ""
	b.connMu.Unlock()

	healthy := false
	defer func() {
		b.connMu.Lock()
		// The stop check must happen under connMu: Close() closes stopCh
		// before sweeping srvConn, so a defer that re-caches without
		// observing the close is guaranteed to do so before Close's sweep
		// acquires the lock — the sweep then finds and closes the conn.
		stopped := false
		select {
		case <-b.stopCh:
			stopped = true // Close() ran mid-probe; it cannot see a detached conn
		default:
		}
		if healthy && !stopped && b.srvConn == nil {
			b.srvConn, b.srvConnAddr = conn, addr
		} else {
			// Broken stream, bootloader closed, or a concurrent fetch
			// cached a fresh connection while we probed: ours is surplus.
			conn.Close()
		}
		b.connMu.Unlock()
	}()
	if err := conn.Send(msgDiscover, req); err != nil {
		return false, true, err
	}
	f, err := conn.RecvTimeout(b.dialTimeout)
	if err != nil {
		return false, true, err
	}
	healthy = true
	return f.Type == msgOffer, true, nil
}

// fetch performs REQUEST → OFFER → FILE_REQUEST → FILE_DATA* against one
// server, following up to two cluster redirect hops: a non-owning
// member answers msgRedirect naming the shard owner rather than
// proxying, and the bootloader repeats the request there. It returns
// the offer, the (possibly empty) driver blob, and the address that
// actually answered — the owner after redirects — so the caller
// records the right home for steady-state renewal traffic. A redirect
// with no address (the answering member lost its cluster majority)
// surfaces as a *Redirect error, which the renewal layer treats like
// any other failed server: keep the driver, try the other servers.
func (b *Bootloader) fetch(addr, database string, leaseID uint64, checksum string) (Offer, []byte, string, error) {
	b.connMu.Lock()
	defer b.connMu.Unlock()
	for hop := 0; ; hop++ {
		offer, blob, err := b.fetchLocked(addr, database, leaseID, checksum)
		var re *Redirect
		if hop < 2 && errors.As(err, &re) && re.Addr != "" && re.Addr != addr {
			addr = re.Addr
			continue
		}
		return offer, blob, addr, err
	}
}

// fetchLocked runs one fetch against exactly one server; caller holds
// connMu. It reuses a cached connection to addr when one is healthy; a
// cached connection that fails mid-exchange (server restarted, idle
// drop) is replaced by one fresh dial before the error is reported.
func (b *Bootloader) fetchLocked(addr, database string, leaseID uint64, checksum string) (Offer, []byte, error) {
	if b.srvConn != nil && b.srvConnAddr == addr {
		offer, blob, err, clean, received := b.fetchOn(b.srvConn, database, leaseID, checksum)
		if clean {
			return offer, blob, err
		}
		b.dropServerConnLocked()
		// Retry on a fresh dial ONLY when the cached connection was
		// dead on arrival (send failed, or the very first read hit
		// EOF/reset without a timeout) — then the server cannot have
		// processed the request, so re-sending is safe. A timeout or a
		// mid-exchange failure may mean the REQUEST was applied
		// (lease created, license seat taken); re-sending would apply
		// it twice, so surface the error and let the renewal layer's
		// keep-driver/retry-later policy handle it.
		var nerr net.Error
		timedOut := errors.As(err, &nerr) && nerr.Timeout()
		if received || timedOut {
			return offer, blob, err
		}
	} else if b.srvConn != nil {
		b.dropServerConnLocked() // failover: talking to a different server now
	}

	conn, err := b.dialServer(addr)
	if err != nil {
		return Offer{}, nil, err
	}
	offer, blob, ferr, clean, _ := b.fetchOn(conn, database, leaseID, checksum)
	if clean {
		b.srvConn, b.srvConnAddr = conn, addr
	} else {
		conn.Close()
	}
	return offer, blob, ferr
}

// dropServerConnLocked closes the cached server connection; caller
// holds connMu.
func (b *Bootloader) dropServerConnLocked() {
	if b.srvConn != nil {
		b.srvConn.Close()
		b.srvConn = nil
		b.srvConnAddr = ""
	}
}

// fetchOn runs one REQUEST exchange over conn. clean reports whether
// the stream is positioned on a frame boundary afterwards (a protocol
// error from the server is a clean, complete exchange; a transport or
// framing failure is not), i.e. whether conn is safe to reuse.
// received reports whether any response frame arrived — once true, the
// server definitely processed the request, so the caller must not
// retry it elsewhere.
func (b *Bootloader) fetchOn(conn *wire.Conn, database string, leaseID uint64, checksum string) (_ Offer, _ []byte, _ error, clean, received bool) {
	if err := conn.Send(msgRequest, b.request(database, leaseID, checksum).encode()); err != nil {
		return Offer{}, nil, err, false, false
	}
	f, err := conn.RecvTimeout(b.dialTimeout)
	if err != nil {
		return Offer{}, nil, err, false, false
	}
	switch f.Type {
	case msgError:
		pe, derr := decodeProtocolError(f.Payload)
		if derr != nil {
			return Offer{}, nil, derr, false, true
		}
		return Offer{}, nil, pe, true, true
	case msgRedirect:
		// Cluster shard routing: this member does not own the request's
		// shard. A complete, clean exchange — the connection stays
		// reusable (it is still the right server for DISCOVER probes).
		re, derr := decodeRedirect(f.Payload)
		if derr != nil {
			return Offer{}, nil, derr, false, true
		}
		return Offer{}, nil, re, true, true
	case msgOffer:
	default:
		return Offer{}, nil, fmt.Errorf("drivolution: unexpected frame 0x%04x", f.Type), false, true
	}
	offer, err := decodeOffer(f.Payload)
	if err != nil {
		return Offer{}, nil, err, false, true
	}
	if !offer.HasDriver {
		return offer, nil, nil, true, true
	}

	if err := conn.Send(msgFileRequest, fileRequest{LeaseID: offer.LeaseID}.encode()); err != nil {
		return Offer{}, nil, err, false, true
	}
	blob := make([]byte, 0, offer.Size)
	for {
		f, err := conn.RecvTimeout(b.dialTimeout)
		if err != nil {
			return Offer{}, nil, fmt.Errorf("drivolution: transfer: %w", err), false, true
		}
		if f.Type == msgError {
			pe, derr := decodeProtocolError(f.Payload)
			if derr != nil {
				return Offer{}, nil, derr, false, true
			}
			return Offer{}, nil, pe, true, true
		}
		if f.Type != msgFileData {
			return Offer{}, nil, fmt.Errorf("drivolution: unexpected frame 0x%04x during transfer", f.Type), false, true
		}
		chunk, err := decodeFileChunk(f.Payload)
		if err != nil {
			return Offer{}, nil, err, false, true
		}
		if int(chunk.Offset) != len(blob) {
			return Offer{}, nil, fmt.Errorf("drivolution: transfer gap at offset %d", chunk.Offset), false, true
		}
		blob = append(blob, chunk.Data...)
		if chunk.Last {
			break
		}
	}
	if uint32(len(blob)) != offer.Size {
		return Offer{}, nil, fmt.Errorf("drivolution: transfer size mismatch: got %d, offered %d", len(blob), offer.Size), false, true
	}
	b.addMetric(func(m *Metrics) { m.BytesFetched += int64(len(blob)) })
	return offer, blob, nil, true, true
}

// install decodes, verifies, and loads a driver blob (the paper's
// "recheck_time = ...; decode(...); load(...)" from Table 3).
func (b *Bootloader) install(offer Offer, blob []byte, addr string) (*loadedDriver, error) {
	img, err := driverimg.Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("drivolution: decode driver: %w", err)
	}
	if b.trustKey != nil {
		if err := img.Verify(b.trustKey); err != nil {
			return nil, fmt.Errorf("drivolution: reject driver: %w", err)
		}
	}
	sum := img.Checksum() // canonical encoding hashed once, not per use
	if sum != offer.DriverChecksum {
		return nil, fmt.Errorf("drivolution: driver checksum mismatch (offered %s, got %s)",
			offer.DriverChecksum, sum)
	}
	drv, err := b.runtime.Load(img)
	if err != nil {
		return nil, err
	}
	return &loadedDriver{
		drv:        drv,
		img:        img,
		checksum:   sum,
		leaseID:    offer.LeaseID,
		leaseTime:  offer.LeaseTime,
		expiresAt:  time.Now().Add(offer.LeaseTime),
		renewPol:   offer.RenewPolicy,
		expirePol:  offer.ExpirationPolicy,
		serverAddr: addr,
		conns:      make(map[*managedConn]struct{}),
	}, nil
}

// bootstrap acquires the first driver: discover, request, download,
// verify, load.
func (b *Bootloader) bootstrap(database string) (*loadedDriver, error) {
	addr, err := b.discover(database)
	if err != nil {
		return nil, err
	}
	offer, blob, served, err := b.fetch(addr, database, 0, "")
	if err != nil {
		return nil, err
	}
	if !offer.HasDriver {
		return nil, fmt.Errorf("drivolution: server %s offered no driver data on bootstrap", served)
	}
	return b.install(offer, blob, served)
}

// Close stops renewal goroutines and force-closes every managed
// connection.
func (b *Bootloader) Close() {
	b.mu.Lock()
	started := b.started
	cur := b.cur
	b.cur = nil
	b.revoked = true
	b.revokeErr = ErrNoDriverAvailable
	select {
	case <-b.stopCh:
	default:
		close(b.stopCh)
	}
	b.mu.Unlock()
	b.connMu.Lock()
	b.dropServerConnLocked()
	b.connMu.Unlock()
	if cur != nil {
		cur.closeAll(b, false)
	}
	if started {
		b.wg.Wait()
	}
}
