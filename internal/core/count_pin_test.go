package core

import (
	"testing"
	"time"

	"repro/internal/dbver"
	"repro/internal/sqlmini"
)

// The statement-budget pins: the round-trip-counting store wrapper
// asserts exactly how many statements each hot path is allowed to
// issue, so a regression that quietly re-introduces per-row SQL (the
// reap's old N+1 confirmation loop) fails here rather than in a
// benchmark graph.

func pinFixture(t *testing.T) (*Server, *CountingGenerationStore, *sqlmini.DB) {
	t.Helper()
	db := sqlmini.NewDB()
	cs := NewCountingGenerationStore(NewLocalStore(db))
	now := time.Unix(50_000, 0).UTC()
	srv, err := NewServer("pin", cs, WithClock(func() time.Time { return now }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddDriver(catalogImage(dbver.V(1, 0, 0)), dbver.FormatImage); err != nil {
		t.Fatal(err)
	}
	return srv, cs, db
}

// TestRenewalStatementBudget: a no-change renewal on a catalog-capable
// store is exactly ONE statement — the guarded UPDATE.
func TestRenewalStatementBudget(t *testing.T) {
	srv, cs, _ := pinFixture(t)
	offer, perr := srv.grant(catalogRequest(), false)
	if perr != nil {
		t.Fatal(perr)
	}
	renew := catalogRequest()
	renew.LeaseID = offer.LeaseID
	renew.CurrentChecksum = offer.DriverChecksum
	// Warm the catalog + prepared handles, then measure.
	if _, perr := srv.grant(renew, false); perr != nil {
		t.Fatal(perr)
	}
	cs.Reset()
	for i := 0; i < 5; i++ {
		if _, perr := srv.grant(renew, false); perr != nil {
			t.Fatal(perr)
		}
	}
	if got := cs.Statements(); got != 5 {
		t.Fatalf("5 no-change renewals issued %d statements, want exactly 5 (1 each)", got)
	}
}

// TestReapStatementBudget: the expiry sweep is exactly ONE statement
// (the sweep UPDATE — staged-blob reclamation is in-memory), no matter
// how many leases exist or expire.
func TestReapStatementBudget(t *testing.T) {
	for _, leases := range []int{0, 1, 500} {
		srv, cs, db := pinFixture(t)
		now := srv.clock()
		for i := 0; i < leases; i++ {
			db.MustExec(`INSERT INTO `+LeasesTable+` (lease_id, driver_id, database,
				user, client_id, granted_at, expires_at, released, renewals)
				VALUES ($id, 1, 'prod', 'app', 'c', $g, $e, FALSE, 0)`,
				sqlmini.Args{"id": int64(1000 + i), "g": now.Add(-2 * time.Hour),
					"e": now.Add(-time.Hour)})
		}
		cs.Reset()
		n, err := srv.ReapExpiredLeases()
		if err != nil {
			t.Fatal(err)
		}
		if n != leases {
			t.Fatalf("swept %d of %d", n, leases)
		}
		if got := cs.Statements(); got != 1 {
			t.Fatalf("reap at %d leases issued %d statements, want exactly 1", leases, got)
		}
		if got := cs.RoundTrips(); got != 1 {
			t.Fatalf("reap at %d leases cost %d round trips, want 1", leases, got)
		}
	}
}

// TestReapDropsOnlyDeadPending: the collapsed sweep must keep the
// staged blob of a lease that renewed (future expiry) and drop blobs
// of swept leases — the race the old per-id confirmation loop guarded.
func TestReapDropsOnlyDeadPending(t *testing.T) {
	srv, _, db := pinFixture(t)
	now := srv.clock()
	// Lease 1: expired, staged → must be dropped. Lease 2: live with a
	// staged transfer (mid-bootstrap) → must be kept.
	for i, exp := range []time.Time{now.Add(-time.Minute), now.Add(time.Hour)} {
		db.MustExec(`INSERT INTO `+LeasesTable+` (lease_id, driver_id, database,
			user, client_id, granted_at, expires_at, released, renewals)
			VALUES ($id, 1, 'prod', 'app', 'c', $g, $e, FALSE, 0)`,
			sqlmini.Args{"id": int64(i + 1), "g": now.Add(-2 * time.Hour), "e": exp})
		srv.stageTransfer(uint64(i+1), []byte{byte(i)}, exp)
	}
	if n, err := srv.ReapExpiredLeases(); err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	srv.pendingMu.Lock()
	_, deadKept := srv.pending[1]
	_, liveKept := srv.pending[2]
	srv.pendingMu.Unlock()
	if deadKept {
		t.Fatal("swept lease's staged blob must be dropped")
	}
	if !liveKept {
		t.Fatal("live lease's staged blob must survive the sweep")
	}
}
