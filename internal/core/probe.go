package core

import (
	"fmt"
	"time"

	"repro/internal/wire"
)

// Probe sends a one-shot DRIVOLUTION_DISCOVER to a server and returns
// its offer, without creating a lease — the administrative "which driver
// would this client get?" check used by drivoctl.
func Probe(addr string, req Request, timeout time.Duration) (Offer, error) {
	conn, err := wire.Dial(addr, timeout)
	if err != nil {
		return Offer{}, err
	}
	defer conn.Close()
	if err := conn.Send(msgDiscover, req.encode()); err != nil {
		return Offer{}, err
	}
	f, err := conn.RecvTimeout(timeout)
	if err != nil {
		return Offer{}, err
	}
	switch f.Type {
	case msgOffer:
		return decodeOffer(f.Payload)
	case msgError:
		pe, derr := decodeProtocolError(f.Payload)
		if derr != nil {
			return Offer{}, derr
		}
		return Offer{}, pe
	default:
		return Offer{}, fmt.Errorf("drivolution: unexpected frame 0x%04x", f.Type)
	}
}
