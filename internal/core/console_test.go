package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dbver"
)

// TestConsoleHeterogeneousDatabases is Figure 3 in miniature: one
// console, two Drivolution-compliant databases with different protocol
// versions, each providing its own driver.
func TestConsoleHeterogeneousDatabases(t *testing.T) {
	f1 := newFixture(t, 1) // database 1 speaks protocol 1
	f2 := newFixture(t, 2) // database 2 speaks protocol 2
	f1.addDriver(t, f1.driverImage(dbver.V(1, 0, 0), 1, 128))
	f2.addDriver(t, f2.driverImage(dbver.V(2, 0, 0), 2, 128))

	console := NewConsole(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64, f1.rt,
		WithCredentials("app", "app-pw"),
		WithDialTimeout(2*time.Second))
	defer console.Close()

	if err := console.Register(f1.appURL(), []string{f1.drv.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := console.Register(f2.appURL(), []string{f2.drv.Addr()}); err != nil {
		t.Fatal(err)
	}
	// Duplicate registration is rejected.
	if err := console.Register(f1.appURL(), []string{f1.drv.Addr()}); err == nil {
		t.Fatal("duplicate Register should fail")
	}

	// The console connects to both databases; each connection uses the
	// right driver for its database's protocol.
	c1, err := console.Connect(f1.appURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := console.Connect(f2.appURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c1.Query("SELECT 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Query("SELECT 1"); err != nil {
		t.Fatal(err)
	}

	vers := console.DriverVersions()
	if len(vers) != 2 {
		t.Fatalf("versions = %v", vers)
	}
	var saw1, saw2 bool
	for _, v := range vers {
		if v == dbver.V(1, 0, 0) {
			saw1 = true
		}
		if v == dbver.V(2, 0, 0) {
			saw2 = true
		}
	}
	if !saw1 || !saw2 {
		t.Fatalf("console did not load both driver implementations: %v", vers)
	}
}

func TestConsoleUnregisteredURL(t *testing.T) {
	f := newFixture(t, 1)
	console := NewConsole(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64, f.rt)
	defer console.Close()
	_, err := console.Connect(f.appURL(), nil)
	if err == nil || !strings.Contains(err.Error(), "no registration") {
		t.Fatalf("err = %v", err)
	}
	if console.BootloaderFor(f.appURL()) != nil {
		t.Fatal("BootloaderFor should be nil for unregistered URL")
	}
}
