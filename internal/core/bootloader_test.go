package core

import (
	"crypto/ed25519"
	"crypto/tls"
	"errors"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/dbver"
	"repro/internal/driverimg"
)

func TestBootstrapAndQuery(t *testing.T) {
	f := newFixture(t, 1)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 1024))

	b := f.bootloader(t)
	c := mustConnect(t, b, f.appURL())

	res, err := c.Query("SELECT name FROM items WHERE id = ?", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Str() != "widget" {
		t.Fatalf("row = %v", res.Rows[0][0])
	}
	m := b.Stats()
	if m.Bootstraps != 1 {
		t.Errorf("Bootstraps = %d", m.Bootstraps)
	}
	if m.BytesFetched == 0 {
		t.Error("BytesFetched = 0")
	}
	if b.Version() != dbver.V(1, 0, 0) {
		t.Errorf("Version = %v", b.Version())
	}
	if b.LeaseID() == 0 {
		t.Error("LeaseID = 0 after bootstrap")
	}
	// Server-side counters moved.
	reqs, offers, _, transfers, bytesOut, _ := f.drv.Stats()
	if reqs < 1 || offers < 1 || transfers != 1 || bytesOut == 0 {
		t.Errorf("server stats: reqs=%d offers=%d transfers=%d bytes=%d", reqs, offers, transfers, bytesOut)
	}
	// One lease on record.
	leases, err := f.drv.Leases()
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 1 || leases[0].Released || leases[0].Renewals != 0 {
		t.Fatalf("leases = %+v", leases)
	}
}

func TestBootstrapNoDriver(t *testing.T) {
	f := newFixture(t, 1)
	b := f.bootloader(t)
	_, err := b.Connect(f.appURL(), nil)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != ErrCodeNoDriver {
		t.Fatalf("err = %v", err)
	}
}

func TestBootstrapAuthRejected(t *testing.T) {
	f := newFixture(t, 1, WithAuth(func(db, user, pass string) error {
		if user != "app" || pass != "app-pw" {
			return errors.New("bad credentials")
		}
		return nil
	}))
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 64))

	good := f.bootloader(t)
	if _, err := good.Connect(f.appURL(), nil); err != nil {
		t.Fatalf("valid credentials rejected: %v", err)
	}

	bad := f.bootloader(t, WithCredentials("app", "wrong"))
	_, err := bad.Connect(f.appURL(), nil)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != ErrCodeAuth {
		t.Fatalf("err = %v", err)
	}
}

// TestLargeDriverChunkedTransfer pushes a driver bigger than one
// FILE_DATA chunk through the FTP-like transfer.
func TestLargeDriverChunkedTransfer(t *testing.T) {
	f := newFixture(t, 1)
	const size = 3*transferChunkSize + 12345
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, size))

	b := f.bootloader(t)
	c := mustConnect(t, b, f.appURL())
	if _, err := c.Query("SELECT 1"); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().BytesFetched; got < size {
		t.Errorf("BytesFetched = %d, want >= %d", got, size)
	}
}

// TestRenewKeepsDriver covers Table 4's RENEW branch: same driver, no
// file transfer, lease extended.
func TestRenewKeepsDriver(t *testing.T) {
	f := newFixture(t, 1)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))
	b := f.bootloader(t)
	mustConnect(t, b, f.appURL())

	_, _, _, transfersBefore, _, _ := f.drv.Stats()
	if err := b.ForceRenew("prod"); err != nil {
		t.Fatal(err)
	}
	m := b.Stats()
	if m.Renewals != 1 || m.Upgrades != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	_, _, _, transfersAfter, _, _ := f.drv.Stats()
	if transfersAfter != transfersBefore {
		t.Error("renewal must not re-transfer an unchanged driver")
	}
	leases, _ := f.drv.Leases()
	if leases[0].Renewals != 1 {
		t.Errorf("lease renewals = %d", leases[0].Renewals)
	}
}

// TestUpgradeSwapsDriver covers the UPGRADE branch: a new driver version
// appears; renewal hot-swaps it; new connections use it.
func TestUpgradeSwapsDriver(t *testing.T) {
	f := newFixture(t, 1)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))
	b := f.bootloader(t)
	c1 := mustConnect(t, b, f.appURL())

	// DBA single-step upgrade: one insert (paper §3.2).
	f.addDriver(t, f.driverImage(dbver.V(2, 0, 0), 1, 256))
	if err := b.ForceRenew("prod"); err != nil {
		t.Fatal(err)
	}
	if b.Version() != dbver.V(2, 0, 0) {
		t.Fatalf("Version = %v, want 2.0.0", b.Version())
	}
	if m := b.Stats(); m.Upgrades != 1 {
		t.Fatalf("Upgrades = %d", m.Upgrades)
	}
	// New connection goes through the new driver and still works.
	c2 := mustConnect(t, b, f.appURL())
	if _, err := c2.Query("SELECT 1"); err != nil {
		t.Fatal(err)
	}
	// Default policy is AFTER_COMMIT: the idle old connection was closed.
	if _, err := c1.Query("SELECT 1"); !errors.Is(err, client.ErrConnRevoked) {
		t.Fatalf("old conn err = %v, want ErrConnRevoked", err)
	}
}

// TestUpgradePolicyAfterClose: existing connections keep working until
// the application closes them.
func TestUpgradePolicyAfterClose(t *testing.T) {
	f := newFixture(t, 1)
	id1 := f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))
	if _, err := f.drv.SetPermission(Permission{
		DriverID: id1, LeaseTime: time.Hour,
		RenewPolicy: RenewUpgrade, ExpirationPolicy: AfterClose, TransferMethod: TransferAny,
	}); err != nil {
		t.Fatal(err)
	}
	b := f.bootloader(t)
	c1 := mustConnect(t, b, f.appURL())

	id2 := f.addDriver(t, f.driverImage(dbver.V(2, 0, 0), 1, 256))
	if _, err := f.drv.SetPermission(Permission{
		DriverID: id2, LeaseTime: time.Hour,
		RenewPolicy: RenewUpgrade, ExpirationPolicy: AfterClose, TransferMethod: TransferAny,
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.ForceRenew("prod"); err != nil {
		t.Fatal(err)
	}
	if b.Version() != dbver.V(2, 0, 0) {
		t.Fatalf("Version = %v", b.Version())
	}
	// Old connection still alive under AFTER_CLOSE.
	if _, err := c1.Query("SELECT 1"); err != nil {
		t.Fatalf("AFTER_CLOSE must keep old connections alive: %v", err)
	}
	if m := b.Stats(); m.ForcedCloses != 0 {
		t.Errorf("ForcedCloses = %d, want 0", m.ForcedCloses)
	}
	// Application closes it; that's the drain.
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Query("SELECT 1"); err == nil {
		t.Fatal("closed connection must not work")
	}
}

// TestUpgradePolicyAfterCommit: idle connections close immediately;
// in-transaction connections drain at their commit.
func TestUpgradePolicyAfterCommit(t *testing.T) {
	f := newFixture(t, 1)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))
	b := f.bootloader(t)

	idle := mustConnect(t, b, f.appURL())
	busy := mustConnect(t, b, f.appURL())
	if err := busy.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := busy.Exec("UPDATE items SET name = 'tmp' WHERE id = 1"); err != nil {
		t.Fatal(err)
	}

	f.addDriver(t, f.driverImage(dbver.V(2, 0, 0), 1, 256))
	if err := b.ForceRenew("prod"); err != nil {
		t.Fatal(err)
	}

	// Idle connection was closed at once.
	if _, err := idle.Query("SELECT 1"); !errors.Is(err, client.ErrConnRevoked) {
		t.Fatalf("idle conn err = %v", err)
	}
	// Busy connection survives its transaction...
	if _, err := busy.Exec("UPDATE items SET name = 'tmp2' WHERE id = 1"); err != nil {
		t.Fatalf("in-tx conn must survive until commit: %v", err)
	}
	if err := busy.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	// ...and is drained right after the commit.
	if _, err := busy.Query("SELECT 1"); !errors.Is(err, client.ErrConnRevoked) {
		t.Fatalf("post-commit err = %v, want ErrConnRevoked", err)
	}
	m := b.Stats()
	if m.ForcedCloses != 2 || m.DeferredTx != 1 || m.AbortedTx != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestUpgradePolicyImmediate: every connection dies at once; in-flight
// transactions count as aborted.
func TestUpgradePolicyImmediate(t *testing.T) {
	f := newFixture(t, 1)
	id1 := f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))
	if _, err := f.drv.SetPermission(Permission{
		DriverID: id1, LeaseTime: time.Hour,
		RenewPolicy: RenewUpgrade, ExpirationPolicy: Immediate, TransferMethod: TransferAny,
	}); err != nil {
		t.Fatal(err)
	}
	b := f.bootloader(t)
	busy := mustConnect(t, b, f.appURL())
	if err := busy.Begin(); err != nil {
		t.Fatal(err)
	}

	id2 := f.addDriver(t, f.driverImage(dbver.V(2, 0, 0), 1, 256))
	if _, err := f.drv.SetPermission(Permission{
		DriverID: id2, LeaseTime: time.Hour,
		RenewPolicy: RenewUpgrade, ExpirationPolicy: Immediate, TransferMethod: TransferAny,
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.ForceRenew("prod"); err != nil {
		t.Fatal(err)
	}
	if _, err := busy.Exec("UPDATE items SET name = 'x' WHERE id = 1"); !errors.Is(err, client.ErrConnRevoked) {
		t.Fatalf("err = %v, want ErrConnRevoked", err)
	}
	m := b.Stats()
	if m.AbortedTx != 1 || m.ForcedCloses != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestRevocation: driver deleted with no replacement → renewal gets
// DRIVOLUTION_ERROR, existing conns transition, new connects fail.
func TestRevocation(t *testing.T) {
	f := newFixture(t, 1)
	id := f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))
	b := f.bootloader(t)
	c := mustConnect(t, b, f.appURL())

	if err := f.drv.DeleteDriver(id); err != nil {
		t.Fatal(err)
	}
	err := b.ForceRenew("prod")
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != ErrCodeRevoked {
		t.Fatalf("renew err = %v", err)
	}
	// Default expiration policy AFTER_COMMIT closed the idle conn.
	if _, qerr := c.Query("SELECT 1"); !errors.Is(qerr, client.ErrConnRevoked) {
		t.Fatalf("old conn err = %v", qerr)
	}
	// New connections are blocked with a clear error (paper §3.1.2).
	if _, cerr := b.Connect(f.appURL(), nil); !errors.Is(cerr, ErrNoDriverAvailable) {
		t.Fatalf("connect err = %v", cerr)
	}
	if m := b.Stats(); m.Revocations != 1 {
		t.Fatalf("Revocations = %d", m.Revocations)
	}
	// The lease is marked released server-side.
	leases, _ := f.drv.Leases()
	if len(leases) != 1 || !leases[0].Released {
		t.Fatalf("leases = %+v", leases)
	}
}

// TestRevokeByPolicy: RevokeDriverForRenewals flips permissions to
// REVOKE; clients are told to stop at renewal.
func TestRevokeByPolicy(t *testing.T) {
	f := newFixture(t, 1)
	id := f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))
	if _, err := f.drv.SetPermission(Permission{
		DriverID: id, LeaseTime: time.Hour,
		RenewPolicy: RenewUpgrade, ExpirationPolicy: AfterClose, TransferMethod: TransferAny,
	}); err != nil {
		t.Fatal(err)
	}
	b := f.bootloader(t)
	c := mustConnect(t, b, f.appURL())

	if err := f.drv.RevokeDriverForRenewals(id); err != nil {
		t.Fatal(err)
	}
	err := b.ForceRenew("prod")
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != ErrCodeRevoked {
		t.Fatalf("err = %v", err)
	}
	// AFTER_CLOSE revocation: existing connection keeps working until
	// the application closes it ("Existing connections can remain active
	// with the revoked driver until they terminate by an explicit
	// closing", §3.4.2)...
	if _, err := c.Query("SELECT 1"); err != nil {
		t.Fatalf("AFTER_CLOSE revoked conn should still work: %v", err)
	}
	// ...but new connections are refused.
	if _, err := b.Connect(f.appURL(), nil); !errors.Is(err, ErrNoDriverAvailable) {
		t.Fatalf("connect err = %v", err)
	}
}

// TestRenewServerUnavailable: the bootloader keeps its driver when the
// server is down and existing connections keep working (paper §3.2: a
// failure "only impacts new driver requests or driver renewal requests").
func TestRenewServerUnavailable(t *testing.T) {
	f := newFixture(t, 1)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))
	b := f.bootloader(t)
	c := mustConnect(t, b, f.appURL())

	f.drv.Stop()
	if err := b.ForceRenew("prod"); err == nil {
		t.Fatal("renewal should fail while server is down")
	}
	// Existing connection unaffected; driver retained.
	if _, err := c.Query("SELECT 1"); err != nil {
		t.Fatalf("existing conn must keep working: %v", err)
	}
	if b.Version() != dbver.V(1, 0, 0) {
		t.Fatal("driver must be retained")
	}
	if m := b.Stats(); m.RenewFailures != 1 || m.Revocations != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestSignedDriverVerification: trusting bootloaders accept signed
// drivers and reject unsigned ones.
func TestSignedDriverVerification(t *testing.T) {
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, 1, WithSigningKey(priv))
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256)) // signed by AddDriver

	b := f.bootloader(t, WithTrustKey(pub))
	if _, err := b.Connect(f.appURL(), nil); err != nil {
		t.Fatalf("signed driver rejected: %v", err)
	}

	// A second server without the signing key serves unsigned drivers;
	// the trusting bootloader must refuse them.
	f2 := newFixture(t, 1) // no signing key
	f2.addDriver(t, f2.driverImage(dbver.V(1, 0, 0), 1, 256))
	b2 := f2.bootloader(t, WithTrustKey(pub))
	if _, err := b2.Connect(f2.appURL(), nil); err == nil {
		t.Fatal("unsigned driver must be rejected by a trusting bootloader")
	}
}

// TestTLSTransfer runs the paper's default secure configuration:
// encrypted channel with server certificate verification.
func TestTLSTransfer(t *testing.T) {
	cert, roots, err := GenerateTLSCert("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, 1)

	// A second Drivolution server over TLS sharing the same store.
	tlsSrv, err := NewServer("drivolution-tls", NewLocalStore(f.drv.store.(*LocalStore).DB))
	if err != nil {
		t.Fatal(err)
	}
	if err := tlsSrv.StartTLS("127.0.0.1:0", cert); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tlsSrv.Stop)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 4096))

	b := NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{tlsSrv.Addr()}, f.rt,
		WithCredentials("app", "app-pw"),
		WithDialTimeout(2*time.Second),
		WithTLS(&tls.Config{RootCAs: roots, ServerName: "127.0.0.1"}))
	t.Cleanup(b.Close)
	c := mustConnect(t, b, f.appURL())
	if _, err := c.Query("SELECT count(*) FROM items"); err != nil {
		t.Fatal(err)
	}

	// A bootloader with the wrong trust roots must refuse the server —
	// the man-in-the-middle defense from §3.1.
	otherCert, otherRoots, err := GenerateTLSCert("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	_ = otherCert
	mitm := NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{tlsSrv.Addr()}, f.rt,
		WithCredentials("app", "app-pw"),
		WithDialTimeout(2*time.Second),
		WithTLS(&tls.Config{RootCAs: otherRoots, ServerName: "127.0.0.1"}))
	t.Cleanup(mitm.Close)
	if _, err := mitm.Connect(f.appURL(), nil); err == nil {
		t.Fatal("bootloader must reject a server whose certificate it does not trust")
	}
}

// TestPushUpdates: a dedicated channel propagates an upgrade without
// waiting for lease expiry (paper §3.2).
func TestPushUpdates(t *testing.T) {
	f := newFixture(t, 1)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))

	b := f.bootloader(t, WithPushUpdates(), WithRenewAhead(0.01))
	mustConnect(t, b, f.appURL())

	// Give the push loop a moment to subscribe.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, _, _, _, n := f.drv.Stats(); n >= 0 {
			break
		}
	}
	time.Sleep(50 * time.Millisecond)

	f.addDriver(t, f.driverImage(dbver.V(2, 0, 0), 1, 256))
	for time.Now().Before(deadline) {
		if b.Version() == dbver.V(2, 0, 0) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if b.Version() != dbver.V(2, 0, 0) {
		t.Fatalf("push upgrade did not land; version = %v, stats = %+v", b.Version(), b.Stats())
	}
}

// TestDiscoverMultiServer: with several servers configured, the
// bootloader picks one that answers (DHCP-like DISCOVER, §3.1).
func TestDiscoverMultiServer(t *testing.T) {
	f := newFixture(t, 1)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))

	// Second server shares the store (a replicated Drivolution service).
	srv2, err := NewServer("drivolution-2", NewLocalStore(f.drv.store.(*LocalStore).DB))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Stop)

	// A dead address first: discover should skip it.
	b := NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{"127.0.0.1:1", f.drv.Addr(), srv2.Addr()}, f.rt,
		WithCredentials("app", "app-pw"),
		WithDialTimeout(time.Second))
	t.Cleanup(b.Close)
	c := mustConnect(t, b, f.appURL())
	if _, err := c.Query("SELECT 1"); err != nil {
		t.Fatal(err)
	}
}

// TestRenewalFailover: when the bootstrap server dies, renewals fail
// over to another configured server (paper §5.3.2).
func TestRenewalFailover(t *testing.T) {
	f := newFixture(t, 1)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))
	shared := f.drv.store.(*LocalStore).DB

	srv2, err := NewServer("drivolution-2", NewLocalStore(shared))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Stop)

	b := NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{f.drv.Addr(), srv2.Addr()}, f.rt,
		WithCredentials("app", "app-pw"),
		WithDialTimeout(time.Second))
	t.Cleanup(b.Close)
	mustConnect(t, b, f.appURL())

	f.drv.Stop() // kill whichever server granted the lease... might be srv2
	srv2Addr := srv2.Addr()
	_ = srv2Addr

	// Upgrade lands via the surviving server.
	img := f.driverImage(dbver.V(2, 0, 0), 1, 256)
	if _, err := srv2.AddDriver(img, dbver.FormatImage); err != nil {
		t.Fatal(err)
	}
	if err := b.ForceRenew("prod"); err != nil {
		t.Fatalf("renewal should fail over: %v", err)
	}
	if b.Version() != dbver.V(2, 0, 0) {
		t.Fatalf("Version = %v", b.Version())
	}
}

// TestLicenseMode implements §5.4.2: one license (driver) per client;
// releasing the lease frees it for another client.
func TestLicenseMode(t *testing.T) {
	f := newFixture(t, 1)
	// Rebuild the Drivolution server in license mode on the same store.
	lic, err := NewServer("license-server", NewLocalStore(f.drv.store.(*LocalStore).DB),
		WithLicenseMode(), WithDefaultLease(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if err := lic.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lic.Stop)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 128))

	mkBL := func(id string) *Bootloader {
		b := NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
			[]string{lic.Addr()}, f.rt,
			WithCredentials("app", "app-pw"),
			WithClientID(id),
			WithDialTimeout(time.Second))
		t.Cleanup(b.Close)
		return b
	}

	b1 := mkBL("client-1")
	if _, err := b1.Connect(f.appURL(), nil); err != nil {
		t.Fatalf("first client must get the license: %v", err)
	}

	b2 := mkBL("client-2")
	_, err = b2.Connect(f.appURL(), nil)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != ErrCodeNoDriver {
		t.Fatalf("second client should be denied while license is held: %v", err)
	}

	// First client releases; second can now acquire.
	if err := b1.ReleaseLease(); err != nil {
		t.Fatal(err)
	}
	b3 := mkBL("client-3")
	if _, err := b3.Connect(f.appURL(), nil); err != nil {
		t.Fatalf("license should be free after release: %v", err)
	}
}

// TestAssemblyOverWire: WithRequiredPackages yields a driver whose
// manifest includes the requested feature packages (§5.4.1).
func TestAssemblyOverWire(t *testing.T) {
	ps := driverimg.NewPackageStore()
	ps.AddPackage("gis", []byte("geometry-pack"), map[string]string{"gis": "on"})
	ps.AddPackage("nls-fr", []byte("bonjour"), nil)

	f := newFixture(t, 1, WithPackages(ps))
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))

	b := f.bootloader(t, WithRequiredPackages("gis"))
	c := mustConnect(t, b, f.appURL())
	if _, err := c.Query("SELECT 1"); err != nil {
		t.Fatal(err)
	}
	// Unknown package is a clean protocol error.
	b2 := f.bootloader(t, WithRequiredPackages("kerberos"))
	_, err := b2.Connect(f.appURL(), nil)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != ErrCodeNoDriver {
		t.Fatalf("err = %v", err)
	}
}

// TestPreconfiguredOptions: permission driver_options are baked into
// the delivered driver server-side (§3.1.1).
func TestPreconfiguredOptions(t *testing.T) {
	f := newFixture(t, 1)
	img := f.driverImage(dbver.V(1, 0, 0), 1, 128)
	delete(img.Manifest.Options, "user") // credentials come from the permission instead
	delete(img.Manifest.Options, "password")
	id := f.addDriver(t, img)
	if _, err := f.drv.SetPermission(Permission{
		DriverID: id, LeaseTime: time.Hour,
		DriverOptions:    "user=app,password=app-pw",
		RenewPolicy:      RenewUpgrade,
		ExpirationPolicy: AfterCommit,
		TransferMethod:   TransferAny,
	}); err != nil {
		t.Fatal(err)
	}

	b := f.bootloader(t)
	// The app passes no credentials at all; the pre-configured driver
	// carries them.
	c, err := b.Connect(f.appURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("SELECT 1"); err != nil {
		t.Fatal(err)
	}
}

// TestProtocolMismatchSurfacesThroughBootloader: a driver built for the
// wrong wire protocol fails at connect, visibly.
func TestProtocolMismatchSurfacesThroughBootloader(t *testing.T) {
	f := newFixture(t, 2)                                   // target speaks protocol 2
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 128)) // driver speaks 1

	b := f.bootloader(t)
	_, err := b.Connect(f.appURL(), nil)
	if !errors.Is(err, client.ErrProtocolMismatch) {
		t.Fatalf("err = %v, want ErrProtocolMismatch", err)
	}

	// Fixing it is the paper's one-step upgrade: insert a compatible
	// driver and renew.
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 1), 2, 128))
	if err := b.ForceRenew("prod"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Connect(f.appURL(), nil); err != nil {
		t.Fatalf("connect after fix: %v", err)
	}
}

// TestDiscoverReusesRenewalConn: a DISCOVER round must probe the server
// the bootloader is already connected to over the persistent renewal
// connection instead of dialing it a second time (ROADMAP lever a).
func TestDiscoverReusesRenewalConn(t *testing.T) {
	f := newFixture(t, 1)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))
	srv2, err := NewServer("drivolution-2", NewLocalStore(f.drv.store.(*LocalStore).DB))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Stop)

	b := NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{f.drv.Addr(), srv2.Addr()}, f.rt,
		WithCredentials("app", "app-pw"),
		WithDialTimeout(time.Second))
	t.Cleanup(b.Close)
	mustConnect(t, b, f.appURL())

	b.connMu.Lock()
	cachedAddr := b.srvConnAddr
	b.connMu.Unlock()
	if cachedAddr == "" {
		t.Fatal("no cached renewal connection after bootstrap")
	}
	connected := f.drv
	if cachedAddr == srv2.Addr() {
		connected = srv2
	}
	connCount := func(s *Server) int {
		s.connsMu.Lock()
		defer s.connsMu.Unlock()
		return len(s.conns)
	}
	before := connCount(connected)
	if _, err := b.discover("prod"); err != nil {
		t.Fatal(err)
	}
	if after := connCount(connected); after != before {
		t.Fatalf("discover opened %d extra connection(s) to the already-connected server", after-before)
	}
	// discover returns on the first answer, possibly before the probe
	// goroutine has re-cached the detached connection; wait for it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		b.connMu.Lock()
		kept := b.srvConn != nil && b.srvConnAddr == cachedAddr
		b.connMu.Unlock()
		if kept {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("discover probe dropped the healthy renewal connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The shared connection is still positioned on a frame boundary:
	// renewals keep working over it.
	if err := b.ForceRenew("prod"); err != nil {
		t.Fatal(err)
	}
}
