package core

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/sqlmini"
)

// TestExternalServer reproduces Figure 2: the Drivolution schema lives
// inside a legacy DBMS; the Drivolution server reaches it through a
// conventional driver; bootloaders bootstrap through that chain.
func TestExternalServer(t *testing.T) {
	// The legacy database holding both the application data and the
	// Drivolution schema.
	legacyDB := sqlmini.NewDB()
	legacyDB.MustExec("CREATE TABLE items (id INTEGER NOT NULL PRIMARY KEY, name VARCHAR)")
	legacyDB.MustExec("INSERT INTO items (id, name) VALUES (1, 'widget')")
	legacy := dbms.NewServer("legacy-db",
		dbms.WithUser("app", "app-pw"),
		dbms.WithUser("drivolution", "svc-pw"))
	legacy.AddDatabase("prod", legacyDB)
	if err := legacy.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(legacy.Stop)

	// Step 2 of Figure 2: the external Drivolution server connects with
	// its own legacy driver.
	legacyDriver := dbms.NewNativeDriver(dbver.V(1, 0, 0), 1)
	store := NewConnStore(func() (client.Conn, error) {
		return legacyDriver.Connect("dbms://"+legacy.Addr()+"/prod",
			client.Props{"user": "drivolution", "password": "svc-pw"})
	})
	t.Cleanup(store.Close)

	srv, err := NewServer("external-drivolution", store)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)

	// The DBA inserts a driver — it lands in the legacy database's
	// information schema, via the legacy driver.
	img := &driverimg.Image{
		Manifest: driverimg.Manifest{
			Kind:            dbms.DriverKind,
			API:             dbver.APIOf("JDBC", 3, 0),
			Version:         dbver.V(1, 0, 0),
			ProtocolVersion: 1,
			Options:         map[string]string{"user": "app", "password": "app-pw"},
		},
		Payload: []byte("driver body"),
	}
	if _, err := srv.AddDriver(img, dbver.FormatImage); err != nil {
		t.Fatal(err)
	}
	res, err := legacyDB.Query("SELECT count(*) FROM " + DriversTable)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 1 {
		t.Fatal("driver row must live in the legacy database")
	}

	// Steps 1, 3, 4: bootloader → external server → driver download →
	// direct connection to the legacy database.
	rt := driverimg.NewRuntime()
	rt.Register(dbms.DriverKind, dbms.ImageFactory())
	b := NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{srv.Addr()}, rt,
		WithCredentials("app", "app-pw"),
		WithDialTimeout(2*time.Second))
	t.Cleanup(b.Close)
	c, err := b.Connect("dbms://"+legacy.Addr()+"/prod", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r, err := c.Query("SELECT name FROM items WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Str() != "widget" {
		t.Fatalf("row = %v", r.Rows[0][0])
	}

	// Lease bookkeeping also flowed through the legacy driver.
	leases, err := srv.Leases()
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 1 {
		t.Fatalf("leases = %+v", leases)
	}
}

// TestExternalStoreRedial: the external store survives a bounce of the
// legacy database (paper §4.1.3: the Drivolution server can be restarted
// without impacting running applications).
func TestExternalStoreRedial(t *testing.T) {
	legacyDB := sqlmini.NewDB()
	legacy := dbms.NewServer("legacy-db", dbms.WithUser("svc", "pw"))
	legacy.AddDatabase("meta", legacyDB)
	if err := legacy.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := legacy.Addr()
	t.Cleanup(legacy.Stop)

	drv := dbms.NewNativeDriver(dbver.V(1, 0, 0), 1)
	store := NewConnStore(func() (client.Conn, error) {
		return drv.Connect("dbms://"+addr+"/meta", client.Props{"user": "svc", "password": "pw"})
	})
	t.Cleanup(store.Close)
	if err := EnsureSchema(store); err != nil {
		t.Fatal(err)
	}

	// Bounce the legacy database.
	legacy.Stop()
	if err := legacy.Start(addr); err != nil {
		t.Fatal(err)
	}

	// The store redials transparently.
	if _, err := store.Exec("SELECT count(*) FROM " + DriversTable); err != nil {
		t.Fatalf("store should redial after a database bounce: %v", err)
	}
}
