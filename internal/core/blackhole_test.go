package core

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/dbver"
	"repro/internal/faultnet"
)

// TestServerHandshakeTimeoutCutsBlackHole pins the server half of the
// failure contract: a client that connects and then never speaks (a
// black-holed uplink — the TCP accept succeeded but every byte is
// swallowed) is cut off by the handshake read deadline instead of
// holding a serveConn goroutine forever, and the server keeps serving
// well-behaved clients throughout.
func TestServerHandshakeTimeoutCutsBlackHole(t *testing.T) {
	f := newFixture(t, 9, WithHandshakeTimeout(80*time.Millisecond))
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 9, 256))

	// Route a client through a faultnet proxy that swallows everything
	// it sends: the server sees a live connection that never produces a
	// first frame.
	p, err := faultnet.NewProxy(f.drv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetPlanner(func(i int, rng *rand.Rand) faultnet.Plan {
		return faultnet.Plan{Up: faultnet.Faults{BlackHole: true}}
	})

	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("hello that never arrives")); err != nil {
		t.Fatal(err)
	}

	// The server must close the silent connection once the handshake
	// deadline passes; the close propagates back through the proxy as
	// EOF on our read side.
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("black-holed connection was not cut by the server")
	}
	cut := time.Since(start)
	if cut > time.Second {
		t.Fatalf("server took %v to cut a silent connection; handshake deadline is 80ms", cut)
	}

	// The stalled connection must not have wedged the server: a normal
	// bootstrap still completes.
	b := f.bootloader(t)
	conn := mustConnect(t, b, f.appURL())
	if _, err := conn.Query("SELECT 1"); err != nil {
		t.Fatalf("server unhealthy after cutting black-holed client: %v", err)
	}
}
