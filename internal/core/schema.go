package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/dbver"
	"repro/internal/sqlmini"
)

// Table names. The paper places drivers in the database information
// schema ("we view drivers as being part of the database schema, and
// thus they belong to the database system tables").
const (
	DriversTable    = "information_schema.drivers"
	PermissionTable = "information_schema.driver_permission"
	LeasesTable     = "information_schema.leases"
)

// DDL statements reproducing the paper's Table 1 and Table 2 exactly,
// plus the leases table described in §4.1.1 ("Leases can be stored in a
// table that has the same format as the distribution table").
var schemaDDL = []string{
	// Paper Table 1: information schema driver table definition.
	`CREATE TABLE IF NOT EXISTS ` + DriversTable + ` (
		driver_id INTEGER NOT NULL PRIMARY KEY,
		api_name VARCHAR NOT NULL,
		api_version_major INTEGER,
		api_version_minor INTEGER,
		platform VARCHAR,
		driver_version_major INTEGER,
		driver_version_minor INTEGER,
		driver_version_micro INTEGER,
		binary_code BLOB NOT NULL,
		binary_format VARCHAR NOT NULL
	)`,
	// Paper Table 2: driver_permission table description.
	`CREATE TABLE IF NOT EXISTS ` + PermissionTable + ` (
		permission_id INTEGER NOT NULL PRIMARY KEY,
		user VARCHAR,
		client_ip VARCHAR,
		database VARCHAR,
		driver_id INTEGER NOT NULL REFERENCES ` + DriversTable + `(driver_id),
		driver_options VARCHAR,
		start_date TIMESTAMP,
		end_date TIMESTAMP,
		lease_time_in_ms BIGINT,
		renew_policy INTEGER,
		expiration_policy INTEGER,
		transfer_method INTEGER
	)`,
	// Lease log (§4.1.1).
	`CREATE TABLE IF NOT EXISTS ` + LeasesTable + ` (
		lease_id BIGINT NOT NULL PRIMARY KEY,
		driver_id INTEGER NOT NULL,
		database VARCHAR,
		user VARCHAR,
		client_id VARCHAR,
		granted_at TIMESTAMP NOT NULL,
		expires_at TIMESTAMP NOT NULL,
		released BOOLEAN NOT NULL,
		renewals INTEGER NOT NULL
	)`,
	// Secondary indexes for the lease-scale hot paths. lease_id and
	// driver_id/permission_id are PRIMARY KEYs, whose index now drives
	// execution of renewals, releases, and blob point-fetches directly;
	// the two driver_id indexes below make the §5.4.2 license-mode count
	// and permission-by-driver lookups O(bucket) instead of O(table) at
	// 10k+ leases. The ordered expires_at index serves the time-window
	// statements — expiry sweeps (`expires_at <= now()`) and the license
	// usage count (`expires_at > now()`) — as O(log n) range seeks
	// instead of full lease-log scans. The composite
	// (driver_id, expires_at) index serves the license-mode
	// is-this-driver-free probe: the equality on driver_id plus the
	// expires_at window are consumed by one index seek, so the planner
	// runs it residual-free over exactly one driver's unexpired leases.
	`CREATE INDEX IF NOT EXISTS leases_driver_id_idx
		ON ` + LeasesTable + ` (driver_id)`,
	`CREATE INDEX IF NOT EXISTS driver_permission_driver_id_idx
		ON ` + PermissionTable + ` (driver_id)`,
	`CREATE INDEX IF NOT EXISTS leases_expires_at_idx
		ON ` + LeasesTable + ` (expires_at) USING ORDERED`,
	`CREATE INDEX IF NOT EXISTS leases_driver_expires_idx
		ON ` + LeasesTable + ` (driver_id, expires_at) USING ORDERED`,
}

// SchemaStatements returns a copy of the DDL statement list EnsureSchema
// applies. Static tooling (drivolint's sqlcheck) replays it into a
// scratch sqlmini database to plan hot statements at lint time; tests
// replay subsets of it to prove that removing an index declaration is a
// build-breaking event.
func SchemaStatements() []string {
	out := make([]string, len(schemaDDL))
	copy(out, schemaDDL)
	return out
}

// EnsureSchema creates the Drivolution tables if missing.
func EnsureSchema(st Store) error {
	for _, ddl := range schemaDDL {
		if _, err := st.Exec(ddl); err != nil {
			return fmt.Errorf("core: ensure schema: %w", err)
		}
	}
	return nil
}

// DriverRecord is one row of the drivers table.
type DriverRecord struct {
	DriverID   int64
	APIName    string
	APIMajor   int // -1 = NULL (all versions)
	APIMinor   int
	Platform   dbver.Platform // "" = NULL (all platforms)
	Version    dbver.Version  // negative parts = NULL
	BinaryCode []byte
	Format     string
}

// Permission is one row of driver_permission (paper Table 2). Empty
// string fields and zero times store as NULL, meaning "matches any".
type Permission struct {
	PermissionID     int64
	User             string
	ClientIP         string
	Database         string
	DriverID         int64
	DriverOptions    string // "k=v,k=v" rendered into connect props
	StartDate        time.Time
	EndDate          time.Time
	LeaseTime        time.Duration
	RenewPolicy      RenewPolicy
	ExpirationPolicy ExpirationPolicy
	TransferMethod   TransferMethod
}

// Lease is one row of the leases table.
type Lease struct {
	LeaseID   uint64
	DriverID  int64
	Database  string
	User      string
	ClientID  string
	GrantedAt time.Time
	ExpiresAt time.Time
	Released  bool
	Renewals  int
}

// nullableStr maps "" to SQL NULL.
func nullableStr(s string) any {
	if s == "" {
		return nil
	}
	return s
}

// nullableInt maps negative to SQL NULL.
func nullableInt(n int) any {
	if n < 0 {
		return nil
	}
	return int64(n)
}

// nullableTime maps the zero time to SQL NULL.
func nullableTime(t time.Time) any {
	if t.IsZero() {
		return nil
	}
	return t
}

// insertDriverSQL adds a driver row; driver_id is allocated by the
// caller (max+1 under the store's single-writer admin path).
const insertDriverSQL = `INSERT INTO ` + DriversTable + `
	(driver_id, api_name, api_version_major, api_version_minor, platform,
	 driver_version_major, driver_version_minor, driver_version_micro,
	 binary_code, binary_format)
	VALUES ($driver_id, $api_name, $api_major, $api_minor, $platform,
	 $drv_major, $drv_minor, $drv_micro, $binary_code, $binary_format)`

// insertDriver takes the one-method Store shape, which a Tx or the
// server's prepared-statement router also satisfies structurally.
func insertDriver(st Store, rec DriverRecord) error {
	_, err := st.Exec(insertDriverSQL, sqlmini.Args{
		"driver_id":     rec.DriverID,
		"api_name":      rec.APIName,
		"api_major":     nullableInt(rec.APIMajor),
		"api_minor":     nullableInt(rec.APIMinor),
		"platform":      nullableStr(string(rec.Platform)),
		"drv_major":     nullableInt(rec.Version.Major),
		"drv_minor":     nullableInt(rec.Version.Minor),
		"drv_micro":     nullableInt(rec.Version.Micro),
		"binary_code":   rec.BinaryCode,
		"binary_format": rec.Format,
	})
	return err
}

const insertPermissionSQL = `INSERT INTO ` + PermissionTable + `
	(permission_id, user, client_ip, database, driver_id, driver_options,
	 start_date, end_date, lease_time_in_ms, renew_policy,
	 expiration_policy, transfer_method)
	VALUES ($permission_id, $user, $client_ip, $database, $driver_id,
	 $driver_options, $start_date, $end_date, $lease_ms, $renew, $expire,
	 $transfer)`

func insertPermission(st Store, p Permission) error {
	_, err := st.Exec(insertPermissionSQL, sqlmini.Args{
		"permission_id":  p.PermissionID,
		"user":           nullableStr(p.User),
		"client_ip":      nullableStr(p.ClientIP),
		"database":       nullableStr(p.Database),
		"driver_id":      p.DriverID,
		"driver_options": nullableStr(p.DriverOptions),
		"start_date":     nullableTime(p.StartDate),
		"end_date":       nullableTime(p.EndDate),
		"lease_ms":       p.LeaseTime.Milliseconds(),
		"renew":          int64(p.RenewPolicy),
		"expire":         int64(p.ExpirationPolicy),
		"transfer":       int64(p.TransferMethod),
	})
	return err
}

// ParseDriverOptions renders a driver_options string ("k=v,k2=v2") into
// a key/value map, the format stored in Table 2's driver_options column.
func ParseDriverOptions(s string) map[string]string {
	out := map[string]string{}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, _ := strings.Cut(kv, "=")
		out[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return out
}

// FormatDriverOptions is the inverse of ParseDriverOptions with
// deterministic ordering.
func FormatDriverOptions(opts map[string]string) string {
	if len(opts) == 0 {
		return ""
	}
	keys := make([]string, 0, len(opts))
	for k := range opts {
		keys = append(keys, k)
	}
	// insertion sort; tiny maps
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+opts[k])
	}
	return strings.Join(parts, ",")
}

func intOrNeg(v sqlmini.Value) int {
	if v.IsNull() {
		return -1
	}
	return int(v.Int())
}

func scanDriverRecord(cols []string, row []sqlmini.Value) (DriverRecord, error) {
	return scanDriverRecordIdx(colIndex(cols), row)
}

// scanDriverRecordIdx scans one driver row with a caller-provided
// column index, so result-set loops build the index once, not per row.
func scanDriverRecordIdx(idx map[string]int, row []sqlmini.Value) (DriverRecord, error) {
	if len(row) < 10 {
		return DriverRecord{}, fmt.Errorf("core: driver row has %d columns", len(row))
	}
	get := func(name string) sqlmini.Value { return row[idx[name]] }
	rec := DriverRecord{
		DriverID: get("driver_id").Int(),
		APIName:  get("api_name").Str(),
		APIMajor: intOrNeg(get("api_version_major")),
		APIMinor: intOrNeg(get("api_version_minor")),
		Platform: dbver.Platform(get("platform").Str()),
		Version: dbver.Version{
			Major: intOrNeg(get("driver_version_major")),
			Minor: intOrNeg(get("driver_version_minor")),
			Micro: intOrNeg(get("driver_version_micro")),
		},
		BinaryCode: get("binary_code").Bytes(),
		Format:     get("binary_format").Str(),
	}
	return rec, nil
}

// scanPermissionRows scans a full driver_permission result set; shared
// by the admin listing and the catalog loader.
func scanPermissionRows(res *sqlmini.Result) []Permission {
	idx := colIndex(res.Cols)
	out := make([]Permission, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, Permission{
			PermissionID:     row[idx["permission_id"]].Int(),
			User:             row[idx["user"]].Str(),
			ClientIP:         row[idx["client_ip"]].Str(),
			Database:         row[idx["database"]].Str(),
			DriverID:         row[idx["driver_id"]].Int(),
			DriverOptions:    row[idx["driver_options"]].Str(),
			StartDate:        row[idx["start_date"]].Time(),
			EndDate:          row[idx["end_date"]].Time(),
			LeaseTime:        millis(row[idx["lease_time_in_ms"]].Int()),
			RenewPolicy:      RenewPolicy(row[idx["renew_policy"]].Int()),
			ExpirationPolicy: ExpirationPolicy(row[idx["expiration_policy"]].Int()),
			TransferMethod:   TransferMethod(row[idx["transfer_method"]].Int()),
		})
	}
	return out
}
