package core

import (
	"errors"
	"testing"

	"repro/internal/client"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/sqlmini"
)

// Tests for ConnStore's v2 session capabilities: remote prepared
// handles (StmtStore over msgPrepare/msgExecStmt) and wire generation
// probes (GenerationStore over msgTableVersions), including the
// capability fallback against v1 peers and the redial/invalidate
// contract.

// remoteFixture is the Figure 2 shape with a capability-negotiating
// driver: a legacy DBMS holding the schema database, and a ConnStore
// dialing it at the given protocol range.
type remoteFixture struct {
	legacy   *dbms.Server
	legacyDB *sqlmini.DB
	store    *ConnStore
}

func newRemoteFixture(t *testing.T, protoMax uint16, serverOpts ...dbms.ServerOption) *remoteFixture {
	t.Helper()
	legacyDB := sqlmini.NewDB()
	opts := append([]dbms.ServerOption{dbms.WithUser("svc", "pw")}, serverOpts...)
	legacy := dbms.NewServer("legacy-db", opts...)
	legacy.AddDatabase("meta", legacyDB)
	if err := legacy.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(legacy.Stop)
	drv := dbms.NewNativeDriver(dbver.V(2, 0, 0), protoMax, dbms.WithProtocolFloor(1))
	addr := legacy.Addr()
	store := NewConnStore(func() (client.Conn, error) {
		return drv.Connect("dbms://"+addr+"/meta", client.Props{"user": "svc", "password": "pw"})
	})
	t.Cleanup(store.Close)
	return &remoteFixture{legacy: legacy, legacyDB: legacyDB, store: store}
}

// TestConnStoreRemotePreparedEquivalence: a ConnStore prepared handle
// returns what ad-hoc Exec returns — results and errors — while the
// remote server parses each statement once per connection, not once
// per call.
func TestConnStoreRemotePreparedEquivalence(t *testing.T) {
	f := newRemoteFixture(t, 2)
	if err := EnsureSchema(f.store); err != nil {
		t.Fatal(err)
	}
	f.legacyDB.MustExec(`CREATE TABLE kv (k INTEGER NOT NULL PRIMARY KEY, v VARCHAR)`)
	f.legacyDB.MustExec(`INSERT INTO kv (k, v) VALUES (1, 'one'), (2, 'two')`)

	st, err := f.store.Prepare(`SELECT v FROM kv WHERE k = $k`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, k := range []int{1, 2, 1, 2} {
		pr, err := st.Exec(sqlmini.Args{"k": k})
		if err != nil {
			t.Fatal(err)
		}
		ar, err := f.store.Exec(`SELECT v FROM kv WHERE k = $k`, sqlmini.Args{"k": k})
		if err != nil {
			t.Fatal(err)
		}
		if pr.Rows[0][0].Str() != ar.Rows[0][0].Str() {
			t.Fatalf("k=%d: prepared %v, ad hoc %v", k, pr.Rows[0][0], ar.Rows[0][0])
		}
	}
	// One connection served everything: one remote parse of the
	// prepared text, four handle executions.
	if got := f.legacy.PreparesServed(); got != 1 {
		t.Fatalf("PreparesServed = %d, want 1 (handle cached per connection)", got)
	}
	if got := f.legacy.StmtExecsServed(); got != 4 {
		t.Fatalf("StmtExecsServed = %d, want 4", got)
	}

	// Error equivalence: statement-level failures surface identically
	// and keep the connection pooled.
	bad, err := f.store.Prepare(`SELECT v FROM nowhere`)
	if err != nil {
		t.Fatal(err)
	}
	_, prepErr := bad.Exec()
	_, adhocErr := f.store.Exec(`SELECT v FROM nowhere`)
	if prepErr == nil || adhocErr == nil || prepErr.Error() != adhocErr.Error() {
		t.Fatalf("error drift: prepared %v, ad hoc %v", prepErr, adhocErr)
	}
}

// TestConnStoreRemotePreparedMutation: mutating statements work through
// remote handles, and the store-level handle survives pool rotation.
func TestConnStoreRemotePreparedMutation(t *testing.T) {
	f := newRemoteFixture(t, 2)
	f.legacyDB.MustExec(`CREATE TABLE n (id INTEGER NOT NULL PRIMARY KEY, c INTEGER)`)
	f.legacyDB.MustExec(`INSERT INTO n (id, c) VALUES (1, 0)`)
	st, err := f.store.Prepare(`UPDATE n SET c = c + 1 WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := st.Exec(); err != nil {
			t.Fatal(err)
		}
	}
	res := f.legacyDB.MustExec(`SELECT c FROM n WHERE id = 1`)
	if res.Rows[0][0].Int() != 5 {
		t.Fatalf("c = %d, want 5", res.Rows[0][0].Int())
	}
}

// TestConnStoreRemotePreparedRedial: a server bounce kills every
// remote handle; a read-only prepared statement transparently
// re-prepares on the replacement connection and replays.
func TestConnStoreRemotePreparedRedial(t *testing.T) {
	f := newRemoteFixture(t, 2)
	f.legacyDB.MustExec(`CREATE TABLE kv (k INTEGER NOT NULL PRIMARY KEY, v VARCHAR)`)
	f.legacyDB.MustExec(`INSERT INTO kv (k, v) VALUES (1, 'one')`)
	st, err := f.store.Prepare(`SELECT v FROM kv WHERE k = $k`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(sqlmini.Args{"k": 1}); err != nil {
		t.Fatal(err)
	}
	preparesBefore := f.legacy.PreparesServed()

	// Bounce the legacy database: pooled connections and their remote
	// handles are all dead.
	addr := f.legacy.Addr()
	f.legacy.Stop()
	if err := f.legacy.Start(addr); err != nil {
		t.Fatal(err)
	}

	res, err := st.Exec(sqlmini.Args{"k": 1})
	if err != nil {
		t.Fatalf("read-only prepared statement must survive a bounce: %v", err)
	}
	if res.Rows[0][0].Str() != "one" {
		t.Fatalf("row = %v", res.Rows[0][0])
	}
	if got := f.legacy.PreparesServed() - preparesBefore; got != 1 {
		t.Fatalf("replacement connection must re-prepare exactly once, did %d times", got)
	}
	if f.store.Stats().Redials == 0 {
		t.Fatal("the bounce must be visible as a redial in Stats")
	}
}

// TestConnStoreRemotePreparedAmbiguousMutation: a mutating prepared
// statement whose connection dies mid-execution must NOT be replayed —
// the outcome is unknown. Simulated with a conn wrapper that kills the
// connection after the statement may have reached the server.
func TestConnStoreRemotePreparedAmbiguousMutation(t *testing.T) {
	f := newRemoteFixture(t, 2)
	f.legacyDB.MustExec(`CREATE TABLE n (id INTEGER NOT NULL PRIMARY KEY, c INTEGER)`)
	f.legacyDB.MustExec(`INSERT INTO n (id, c) VALUES (1, 0)`)

	// A store whose connections report an ambiguous failure on the
	// first mutating handle execution.
	drv := dbms.NewNativeDriver(dbver.V(2, 0, 0), 2, dbms.WithProtocolFloor(1))
	addr := f.legacy.Addr()
	trip := &tripwire{}
	store := NewConnStore(func() (client.Conn, error) {
		c, err := drv.Connect("dbms://"+addr+"/meta", client.Props{"user": "svc", "password": "pw"})
		if err != nil {
			return nil, err
		}
		return &ambushConn{Conn: c, trip: trip}, nil
	})
	t.Cleanup(store.Close)

	st, err := store.Prepare(`UPDATE n SET c = c + 1 WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(); err != nil { // warm the handle
		t.Fatal(err)
	}
	trip.armed = true
	_, err = st.Exec()
	if !errors.Is(err, ErrExecOutcomeUnknown) {
		t.Fatalf("ambiguous mutating prepared exec: err = %v, want ErrExecOutcomeUnknown", err)
	}
	// Exactly one application happened before arming; the ambiguous
	// attempt DID reach the server (the wrapper cut the reply path), so
	// the counter shows it — but no replay doubled it.
	res := f.legacyDB.MustExec(`SELECT c FROM n WHERE id = 1`)
	if got := res.Rows[0][0].Int(); got != 2 {
		t.Fatalf("c = %d: the ambiguous attempt must apply at most once (no replay)", got)
	}
}

// tripwire arms the ambushConn failure injection.
type tripwire struct{ armed bool }

// ambushConn wraps a live driver connection; when armed, handle
// executions pass the statement to the server but report a
// connection-level failure (reply lost), and subsequent pings fail —
// the ambiguous mid-statement death.
type ambushConn struct {
	client.Conn
	trip *tripwire
	dead bool
}

func (a *ambushConn) Prepare(sql string) (client.ConnStmt, error) {
	h, err := a.Conn.(client.StmtConn).Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &ambushStmt{inner: h, c: a}, nil
}

func (a *ambushConn) Supports(f client.Feature) bool {
	return a.Conn.(client.FeatureConn).Supports(f)
}

func (a *ambushConn) Ping() error {
	if a.dead {
		return errors.New("ambush: connection lost")
	}
	return a.Conn.Ping()
}

type ambushStmt struct {
	inner client.ConnStmt
	c     *ambushConn
}

func (s *ambushStmt) Exec(args ...any) (*client.Result, error) {
	res, err := s.inner.Exec(args...)
	if s.c.trip.armed {
		s.c.trip.armed = false
		s.c.dead = true
		_ = res
		// The statement reached the server (it executed), but the
		// caller sees a connection death without ErrStatementNotSent.
		return nil, errors.New("ambush: connection reset mid-reply")
	}
	return res, err
}

func (s *ambushStmt) Query(args ...any) (*client.Result, error) { return s.Exec(args...) }
func (s *ambushStmt) Close() error                              { return s.inner.Close() }

// TestConnStoreGenerationProbe: ConnStore reports live generations over
// the wire, observes writes made by OTHER clients of the legacy
// database (the thing the SQL fallback existed for), and executes zero
// SQL doing it.
func TestConnStoreGenerationProbe(t *testing.T) {
	f := newRemoteFixture(t, 2)
	if err := EnsureSchema(f.store); err != nil {
		t.Fatal(err)
	}
	if !f.store.GenerationSupported() {
		t.Fatal("v2 sessions must support generation probes")
	}
	queriesBefore := f.legacy.QueriesServed()
	g1 := f.store.Generation()
	// A remote peer (here: the embedded handle, standing in for any
	// other client of the legacy DBMS) mutates the drivers table behind
	// the store's back.
	f.legacyDB.MustExec(`INSERT INTO `+DriversTable+
		` (driver_id, api_name, api_version_major, api_version_minor, platform,
		   driver_version_major, driver_version_minor, driver_version_micro,
		   binary_code, binary_format)
		  VALUES (1, 'JDBC', 3, 0, '%', 1, 0, 0, $b, 'image')`,
		sqlmini.Args{"b": []byte("peer-written blob")})
	g2 := f.store.Generation()
	if g2 <= g1 {
		t.Fatalf("generation must observe a remote peer's write: %d then %d", g1, g2)
	}
	// Lease churn must NOT move the generation (the catalog contract).
	f.legacyDB.MustExec(`INSERT INTO ` + LeasesTable + ` (lease_id, driver_id, database,
		user, client_id, granted_at, expires_at, released, renewals)
		VALUES (1, 1, 'prod', 'app', 'c', now(), now(), FALSE, 0)`)
	if g3 := f.store.Generation(); g3 != g2 {
		t.Fatalf("lease churn moved the generation: %d then %d", g2, g3)
	}
	if got := f.legacy.QueriesServed() - queriesBefore; got != 0 {
		t.Fatalf("generation probes executed %d SQL statements, want 0", got)
	}
}

// TestConnStoreGenerationDisabledOnV1: against a v1-only server the
// capability comes back unsupported and the catalog must keep the SQL
// path (GenerationEnabled false) — the mixed-version downgrade.
func TestConnStoreGenerationDisabledOnV1(t *testing.T) {
	f := newRemoteFixture(t, 2, dbms.WithProtocolVersion(1))
	if err := EnsureSchema(f.store); err != nil {
		t.Fatal(err)
	}
	if f.store.GenerationSupported() {
		t.Fatal("v1 sessions cannot support generation probes")
	}
	if _, ok := GenerationEnabled(f.store); ok {
		t.Fatal("GenerationEnabled must gate the negotiated-down store")
	}
	// Prepared handles fall back to per-call SQL on the same code path.
	st, err := f.store.Prepare(`SELECT count(*) FROM ` + DriversTable)
	if err != nil {
		t.Fatal(err)
	}
	queriesBefore := f.legacy.QueriesServed()
	for i := 0; i < 3; i++ {
		if _, err := st.Exec(); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.legacy.QueriesServed() - queriesBefore; got != 3 {
		t.Fatalf("fallback handle must run plain SQL per call: %d statements, want 3", got)
	}
	if got := f.legacy.PreparesServed(); got != 0 {
		t.Fatalf("v1 sessions must never see msgPrepare: %d", got)
	}
}

// TestConnStoreGenerationDemotedOnDowngrade: when the legacy DBMS is
// replaced mid-life by a build that no longer speaks the capability,
// the store demotes its generation support for good instead of burning
// a failing probe (plus a ping) on every future matchmaking request.
func TestConnStoreGenerationDemotedOnDowngrade(t *testing.T) {
	f := newRemoteFixture(t, 2)
	if err := EnsureSchema(f.store); err != nil {
		t.Fatal(err)
	}
	if !f.store.GenerationSupported() {
		t.Fatal("v2 fixture must start supported")
	}
	if g := f.store.Generation(); g >= genFallbackBase {
		t.Fatalf("healthy probe returned fallback value %d", g)
	}

	// Replace the server with a v1-only build on the same address.
	addr := f.legacy.Addr()
	f.legacy.Stop()
	downgraded := dbms.NewServer("legacy-db",
		dbms.WithUser("svc", "pw"), dbms.WithProtocolVersion(1))
	downgraded.AddDatabase("meta", f.legacyDB)
	if err := downgraded.Start(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(downgraded.Stop)

	if g := f.store.Generation(); g < genFallbackBase {
		t.Fatalf("probe against a v1 peer must report a fallback value, got %d", g)
	}
	if f.store.GenerationSupported() {
		t.Fatal("generation support must demote after an ErrNotSupported probe")
	}
	if _, ok := GenerationEnabled(f.store); ok {
		t.Fatal("the catalog must fall back to the SQL path after demotion")
	}
	// The store itself keeps working over SQL.
	if _, err := f.store.Exec(`SELECT count(*) FROM ` + DriversTable); err != nil {
		t.Fatalf("SQL path after demotion: %v", err)
	}
}

// TestConnStoreStats: the pool health counters move with real traffic.
func TestConnStoreStats(t *testing.T) {
	f := newRemoteFixture(t, 2)
	f.legacyDB.MustExec(`CREATE TABLE s (id INTEGER NOT NULL PRIMARY KEY)`)

	if st := f.store.Stats(); st.Dials != 0 || st.InUse != 0 || st.Idle != 0 {
		t.Fatalf("fresh store stats = %+v", st)
	}
	if _, err := f.store.Exec(`SELECT count(*) FROM s`); err != nil {
		t.Fatal(err)
	}
	st := f.store.Stats()
	if st.Dials != 1 || st.Idle != 1 || st.InUse != 0 {
		t.Fatalf("after one statement: %+v", st)
	}

	h, err := f.store.Prepare(`SELECT count(*) FROM s`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Exec(); err != nil {
		t.Fatal(err)
	}
	st = f.store.Stats()
	if st.RemotePrepares != 1 || st.RemoteHandlesLive != 1 {
		t.Fatalf("after one prepared exec: %+v", st)
	}

	// A transaction holds a connection while open.
	tx, err := f.store.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if got := f.store.Stats().InUse; got != 1 {
		t.Fatalf("InUse during tx = %d, want 1", got)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := f.store.Stats().InUse; got != 0 {
		t.Fatalf("InUse after rollback = %d, want 0", got)
	}

	// A bounce retires the pooled connections and their handles.
	addr := f.legacy.Addr()
	f.legacy.Stop()
	if err := f.legacy.Start(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Exec(); err != nil {
		t.Fatal(err)
	}
	st = f.store.Stats()
	if st.Redials == 0 {
		t.Fatalf("bounce must count as redial: %+v", st)
	}
	if st.RemoteHandlesLive != 1 || st.RemotePrepares != 2 {
		t.Fatalf("after bounce + re-prepare: %+v", st)
	}
}

// TestExternalMatchmakingZeroSQL is the acceptance pin: with a v2
// legacy DBMS, steady-state matchmaking on the EXTERNAL deployment
// issues zero SQL statements — the only per-request remote traffic is
// the generation probe. The CountingGenerationStore counts statements
// crossing the storage boundary and the legacy server counts what
// reaches it; both must stay flat across matches.
func TestExternalMatchmakingZeroSQL(t *testing.T) {
	f := newRemoteFixture(t, 2)
	cs := NewCountingGenerationStore(f.store)
	srv, err := NewServer("external", cs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddDriver(catalogImage(dbver.V(1, 0, 0)), dbver.FormatImage); err != nil {
		t.Fatal(err)
	}
	req := catalogRequest()
	// Warm: first match loads the catalog (SQL) and fixes capability
	// detection.
	if _, perr := srv.match(req); perr != nil {
		t.Fatal(perr)
	}
	cs.Reset()
	queriesBefore := f.legacy.QueriesServed()
	probesBefore := f.legacy.VersionProbesServed()
	const matches = 10
	for i := 0; i < matches; i++ {
		g, perr := srv.match(req)
		if perr != nil {
			t.Fatal(perr)
		}
		if g.driverID == 0 {
			t.Fatal("match must resolve the driver")
		}
	}
	if got := cs.Statements(); got != 0 {
		t.Fatalf("steady-state external matchmaking issued %d SQL statements, want 0", got)
	}
	if got := f.legacy.QueriesServed() - queriesBefore; got != 0 {
		t.Fatalf("%d statements reached the legacy DBMS, want 0", got)
	}
	// The generation probe is the only per-request remote traffic.
	if got := f.legacy.VersionProbesServed() - probesBefore; got != matches {
		t.Fatalf("version probes = %d, want %d (one per match)", got, matches)
	}

	// An admin mutation through the store is visible to the very next
	// match — the generation probe catches it without SQL polling.
	if _, err := srv.AddDriver(catalogImage(dbver.V(2, 0, 0)), dbver.FormatImage); err != nil {
		t.Fatal(err)
	}
	g, perr := srv.match(req)
	if perr != nil {
		t.Fatal(perr)
	}
	if g.driverID != 2 {
		t.Fatalf("matched driver %d after upgrade, want 2", g.driverID)
	}
}

// TestExternalRenewalStatementBudget: on the external deployment a
// no-change renewal is one statement — the guarded UPDATE through a
// remote prepared handle — plus the generation probe; nothing else
// reaches the legacy DBMS.
func TestExternalRenewalStatementBudget(t *testing.T) {
	f := newRemoteFixture(t, 2)
	cs := NewCountingGenerationStore(f.store)
	srv, err := NewServer("external", cs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddDriver(catalogImage(dbver.V(1, 0, 0)), dbver.FormatImage); err != nil {
		t.Fatal(err)
	}
	offer, perr := srv.grant(catalogRequest(), false)
	if perr != nil {
		t.Fatal(perr)
	}
	renew := catalogRequest()
	renew.LeaseID = offer.LeaseID
	renew.CurrentChecksum = offer.DriverChecksum
	if _, perr := srv.grant(renew, false); perr != nil { // warm handles
		t.Fatal(perr)
	}
	cs.Reset()
	queriesBefore := f.legacy.QueriesServed()
	const renewals = 5
	for i := 0; i < renewals; i++ {
		if _, perr := srv.grant(renew, false); perr != nil {
			t.Fatal(perr)
		}
	}
	if got := cs.Statements(); got != renewals {
		t.Fatalf("%d renewals issued %d statements, want exactly %d (1 each)", renewals, got, renewals)
	}
	if got := f.legacy.QueriesServed() - queriesBefore; got != renewals {
		t.Fatalf("%d statements reached the legacy DBMS, want %d", got, renewals)
	}
}
