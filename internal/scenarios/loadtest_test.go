package scenarios

import (
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/dbver"
)

// These tests are the deterministic, scaled-down tier of the load
// harness: the same scenario code cmd/experiments -load runs at 100k+
// population, here at populations that finish in seconds and run in
// `make check` / `make check-race`. scripts/loadtest.sh layers the
// full-population runs and the BENCH_tail.json compare gate on top.

func TestLoadScenarioNames(t *testing.T) {
	names := LoadScenarios()
	if len(names) != 4 {
		t.Fatalf("scenarios = %v, want the 4 canonical ones", names)
	}
	if _, err := RunLoad("no-such-scenario", LoadConfig{}); err == nil {
		t.Fatal("unknown scenario must error")
	}
}

func TestLoadSteadySmall(t *testing.T) {
	res, err := RunLoad("steady", LoadConfig{
		Population: 300, Workers: 4, Duration: 2 * time.Second, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Timeouts != 0 {
		t.Fatalf("steady small: %+v", res)
	}
	// Every client bootstraps, and the run outlasts one renewal round.
	if res.Requests < 2*300 {
		t.Fatalf("requests = %d, want >= 600 (bootstraps + a renewal round)", res.Requests)
	}
	if res.P50Us <= 0 || res.P95Us < res.P50Us || res.P99Us < res.P95Us || res.MaxUs < res.P99Us {
		t.Fatalf("tail stats inconsistent: %+v", res)
	}
	if res.RequestsPerSec <= 0 || res.StatementsPerSec <= 0 {
		t.Fatalf("rates missing: %+v", res)
	}
}

// TestLoadUpgradeStorm1k is the seeded ~1k-bootloader upgrade storm
// that rides `make check-race`: one AddDriver triggers a fleet-wide
// hot-swap. It pins three invariants: the server never holds more live
// leases than clients (no double-grant during upgrade), every client
// converges to the new driver generation, and the swap costs zero
// availability (no errors, empty error window).
func TestLoadUpgradeStorm1k(t *testing.T) {
	cfg := LoadConfig{
		Population: 1000, Workers: 8, Seed: 42,
		Lease: 2 * time.Second, Duration: time.Second, Payload: 512,
	}.withDefaults()

	srv, _, err := loadServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	if _, err := srv.AddDriver(loadImage(dbver.V(1, 0, 0), cfg.Payload), dbver.FormatImage); err != nil {
		t.Fatal(err)
	}
	f, err := fleetFor(cfg, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()
	if err := settle(f, cfg); err != nil {
		t.Fatal(err)
	}
	before := f.Checksums()

	if _, err := srv.AddDriver(loadImage(dbver.V(2, 0, 0), cfg.Payload), dbver.FormatImage); err != nil {
		t.Fatal(err)
	}

	// Sample the server's live-lease count throughout the storm.
	stop := make(chan struct{})
	peakCh := make(chan int, 1)
	go func() {
		peak := 0
		for {
			select {
			case <-stop:
				peakCh <- peak
				return
			default:
			}
			if n, err := srv.LicensesInUse(); err == nil && n > peak {
				peak = n
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	converge, err := waitConverged(f, cfg, before, 2*cfg.Lease+30*time.Second)
	close(stop)
	peak := <-peakCh
	if err != nil {
		t.Fatal(err)
	}
	f.Stop()
	rep := f.Report()
	t.Logf("storm: converged in %v; %s", converge.Round(time.Millisecond), rep)

	if peak > cfg.Population {
		t.Fatalf("lease cap exceeded during storm: %d live leases for %d clients", peak, cfg.Population)
	}
	if rep.Upgrades < int64(cfg.Population) {
		t.Fatalf("only %d/%d clients upgraded", rep.Upgrades, cfg.Population)
	}
	if rep.Stats.Errors != 0 {
		t.Fatalf("hot-swap cost availability: %d errors, window %v", rep.Stats.Errors, rep.Stats.ErrorWindow)
	}
	if rep.Stats.ErrorWindow != 0 {
		t.Fatalf("availability-loss window = %v, want 0 for a clean storm", rep.Stats.ErrorWindow)
	}
	if rep.TransferBytes < int64(cfg.Population*cfg.Payload) {
		t.Fatalf("transfer bytes = %d, want >= %d (every client fetched the new blob)",
			rep.TransferBytes, cfg.Population*cfg.Payload)
	}
}

func TestLoadLicenseContentionSmall(t *testing.T) {
	res, err := RunLoad("license", LoadConfig{
		Population: 40, Workers: 4, Duration: 1200 * time.Millisecond, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LicenseCap != 20 {
		t.Fatalf("cap = %d, want population/2 = 20", res.LicenseCap)
	}
	if res.PeakLicenses > res.LicenseCap {
		t.Fatalf("peak %d > cap %d", res.PeakLicenses, res.LicenseCap)
	}
	if res.Denied == 0 {
		t.Fatalf("no denials under contention: %+v", res)
	}
}

func TestLoadRestartStormSmall(t *testing.T) {
	res, err := RunLoad("restart", LoadConfig{
		Population: 200, Workers: 4, Duration: time.Second, Seed: 11, Payload: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatalf("restart produced no client-visible errors: %+v", res)
	}
	if res.ConvergeMs <= 0 {
		t.Fatalf("no convergence recorded: %+v", res)
	}
	if res.Upgrades < int64(res.Population) {
		t.Fatalf("only %d/%d clients upgraded through the restart", res.Upgrades, res.Population)
	}
}

// TestLoadClusterFailoverSmall is the scaled-down cluster tier: a
// 3-member control plane under the simulated fleet, one member killed
// mid-run. It is opt-in (`make loadtest CLUSTER=3` sets LOAD_CLUSTER)
// so the tier-1 `go test ./...` path stays single-server; the scenario
// itself asserts the routing/no-lost-lease/bounded-window invariants.
func TestLoadClusterFailoverSmall(t *testing.T) {
	members := 3
	if v := os.Getenv("LOAD_CLUSTER"); v == "" {
		t.Skip("cluster load tier is opt-in: run via `make loadtest CLUSTER=3` (sets LOAD_CLUSTER)")
	} else if n, err := strconv.Atoi(v); err == nil && n > 1 {
		members = n
	}
	res, err := RunLoad("cluster", LoadConfig{
		Population: 150, Workers: 4, Duration: 2 * time.Second, Seed: 13,
		Payload: 512, Cluster: members,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cluster small: %d reqs, %d redirects, errors %d (window %.0fms), p99 %.0fµs",
		res.Requests, res.Redirects, res.Errors, res.ErrorWindowMs, res.P99Us)
	if res.Redirects == 0 {
		t.Fatalf("no redirects observed: %+v", res)
	}
	if res.Rebootstraps != 0 {
		t.Fatalf("leases lost across the kill: %+v", res)
	}
}
