package scenarios

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/sequoia"
	"repro/internal/sqlmini"
)

// SequoiaCluster is a live controllers × backends deployment used by the
// Figure 5/6 scenarios and benchmarks.
type SequoiaCluster struct {
	Group       *sequoia.Group
	Controllers []*sequoia.Controller
	Backends    []*dbms.Server

	closers []func()
}

// newSequoiaCluster builds controllers × backendsPer real servers, all
// enabled, with a kv table on every backend.
func newSequoiaCluster(controllers, backendsPer int) (*SequoiaCluster, error) {
	cl := &SequoiaCluster{Group: sequoia.NewGroup()}
	fail := func(err error) (*SequoiaCluster, error) {
		cl.Close()
		return nil, err
	}
	for ci := 0; ci < controllers; ci++ {
		ctrl := sequoia.NewController(fmt.Sprintf("controller-%d", ci+1), "vdb", cl.Group,
			sequoia.WithControllerUser("app", "app-pw"))
		for bi := 0; bi < backendsPer; bi++ {
			name := fmt.Sprintf("db%d-%d", ci+1, bi+1)
			db := sqlmini.NewDB()
			db.MustExec("CREATE TABLE kv (k VARCHAR NOT NULL PRIMARY KEY, v INTEGER)")
			srv := dbms.NewServer(name, dbms.WithUser("seq", "seq-pw"))
			srv.AddDatabase("shard", db)
			if err := srv.Start("127.0.0.1:0"); err != nil {
				return fail(err)
			}
			cl.closers = append(cl.closers, srv.Stop)
			cl.Backends = append(cl.Backends, srv)
			ctrl.AddBackend(&sequoia.Backend{
				Name:   name,
				URL:    "dbms://" + srv.Addr() + "/shard",
				Props:  client.Props{"user": "seq", "password": "seq-pw"},
				Driver: dbms.NewNativeDriver(dbver.V(1, 0, 0), 1),
			})
			if err := ctrl.EnableBackend(name); err != nil {
				return fail(err)
			}
		}
		if err := ctrl.Start("127.0.0.1:0"); err != nil {
			return fail(err)
		}
		cl.closers = append(cl.closers, ctrl.Stop)
		cl.Controllers = append(cl.Controllers, ctrl)
	}
	return cl, nil
}

// Close stops everything.
func (cl *SequoiaCluster) Close() {
	for i := len(cl.closers) - 1; i >= 0; i-- {
		cl.closers[i]()
	}
}

// URL is the multi-controller Sequoia URL (§5.3.2).
func (cl *SequoiaCluster) URL() string {
	hosts := ""
	for i, c := range cl.Controllers {
		if a := c.Addr(); a != "" {
			if i > 0 && hosts != "" {
				hosts += ","
			}
			hosts += a
		}
	}
	return "sequoia://" + hosts + "/vdb"
}

// SequoiaDriverImage builds a distributable Sequoia driver image for
// this cluster.
func (cl *SequoiaCluster) SequoiaDriverImage(v dbver.Version) *driverimg.Image {
	return &driverimg.Image{
		Manifest: driverimg.Manifest{
			Kind:            sequoia.DriverKind,
			API:             dbver.APIOf("JDBC", 3, 0),
			Version:         v,
			ProtocolVersion: 1,
			Options:         map[string]string{"user": "app", "password": "app-pw"},
		},
		Payload: []byte("sequoia driver " + v.String()),
	}
}

// BackendsConsistent checks that all backends of running controllers
// hold identical kv row counts.
func (cl *SequoiaCluster) BackendsConsistent() (bool, string) {
	counts := map[string]int64{}
	var first int64 = -1
	same := true
	for _, srv := range cl.Backends {
		res, err := srv.Database("shard").Query("SELECT count(*) FROM kv")
		if err != nil {
			return false, "query failed: " + err.Error()
		}
		n := res.Rows[0][0].Int()
		counts[srv.Name()] = n
		if first == -1 {
			first = n
		} else if n != first {
			same = false
		}
	}
	return same, fmt.Sprintf("%v", counts)
}
