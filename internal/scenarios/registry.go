package scenarios

// Experiment is a named, runnable reproduction artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Report, error)
}

// All returns every experiment in presentation order: the paper's
// tables, figures, sample code, case studies, and the quantitative
// measurements backing its prose claims.
func All() []Experiment {
	return []Experiment{
		{ID: "T1", Title: "Table 1 — drivers schema", Run: T1},
		{ID: "T2", Title: "Table 2 — driver_permission schema", Run: T2},
		{ID: "T3", Title: "Table 3 — bootstrap protocol", Run: T3},
		{ID: "T4", Title: "Table 4 — renewal protocol", Run: T4},
		{ID: "T5", Title: "Table 5 — DBA procedures", Run: T5},
		{ID: "F1", Title: "Figure 1 — architecture overview", Run: F1},
		{ID: "F2", Title: "Figure 2 — external server for legacy DBs", Run: F2},
		{ID: "F3", Title: "Figure 3 — heterogeneous DBMS console", Run: F3},
		{ID: "F4", Title: "Figure 4 — master/slave failover", Run: F4},
		{ID: "F5", Title: "Figure 5 — standalone server + Sequoia", Run: F5},
		{ID: "F6", Title: "Figure 6 — embedded Drivolution servers", Run: F6},
		{ID: "S", Title: "Sample code 1&2 — matchmaking", Run: SampleCode},
		{ID: "A", Title: "§5.4.1 — driver assembly", Run: Assembly},
		{ID: "L", Title: "§5.4.2 — license server", Run: License},
		{ID: "Q1", Title: "upgrade disruption, traditional vs Drivolution", Run: Q1},
		{ID: "Q2", Title: "lease-time trade-off sweep", Run: Q2},
	}
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			out := e
			return &out
		}
	}
	return nil
}
