package scenarios

import (
	"testing"
)

// TestAllExperimentsPass runs every reproduction artifact end to end and
// requires each one to report Pass — this is the repository's statement
// that all tables, figures, and case studies reproduce.
func TestAllExperimentsPass(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run()
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Title, err)
			}
			for _, line := range rep.Lines {
				t.Log(line)
			}
			if !rep.Pass {
				t.Fatalf("%s (%s) did not reproduce the paper's claim", e.ID, e.Title)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if e := ByID("T3"); e == nil || e.ID != "T3" {
		t.Fatalf("ByID(T3) = %+v", e)
	}
	if e := ByID("nope"); e != nil {
		t.Fatal("ByID(nope) should be nil")
	}
}
