// Package scenarios assembles the repository's subsystems into the
// paper's experiments: every table (1–5) and figure (1–6), the sample-
// code matchmaking checks, the §5.4 case studies, and the quantitative
// upgrade-disruption and lease-traffic measurements that back the
// paper's prose claims. cmd/experiments prints these; bench_test.go
// times the hot paths.
package scenarios

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/sqlmini"
)

// Report is one experiment's outcome.
type Report struct {
	ID    string
	Title string
	Lines []string
	// Pass is the experiment's own pass/fail judgement of the paper's
	// qualitative claim.
	Pass bool
}

func (r *Report) logf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Stack is one vertical slice: target DBMS + Drivolution server +
// driver runtime, mirroring the test fixtures but usable from binaries
// and benchmarks.
type Stack struct {
	Target *dbms.Server
	Drv    *core.Server
	RT     *driverimg.Runtime

	closers []func()
}

// StackConfig parameterizes NewStack.
type StackConfig struct {
	// TargetProto is the DBMS wire-protocol version (default 1).
	TargetProto uint16
	// ServerOpts configure the Drivolution server.
	ServerOpts []core.ServerOption
	// Rows seeds the items table with this many rows (default 2).
	Rows int
}

// NewStack boots a target DBMS ("prod" database, user app/app-pw) and a
// standalone Drivolution server, both on loopback.
func NewStack(cfg StackConfig) (*Stack, error) {
	if cfg.TargetProto == 0 {
		cfg.TargetProto = 1
	}
	if cfg.Rows == 0 {
		cfg.Rows = 2
	}
	appDB := sqlmini.NewDB()
	appDB.MustExec("CREATE TABLE items (id INTEGER NOT NULL PRIMARY KEY, name VARCHAR)")
	for i := 1; i <= cfg.Rows; i++ {
		appDB.MustExec("INSERT INTO items (id, name) VALUES (?, ?)", i, fmt.Sprintf("item-%d", i))
	}
	target := dbms.NewServer("prod-db",
		dbms.WithUser("app", "app-pw"),
		dbms.WithProtocolVersion(cfg.TargetProto))
	target.AddDatabase("prod", appDB)
	if err := target.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}

	drv, err := core.NewServer("drivolution-1", core.NewLocalStore(sqlmini.NewDB()), cfg.ServerOpts...)
	if err != nil {
		target.Stop()
		return nil, err
	}
	if err := drv.Start("127.0.0.1:0"); err != nil {
		target.Stop()
		return nil, err
	}

	rt := driverimg.NewRuntime()
	rt.Register(dbms.DriverKind, dbms.ImageFactory())

	s := &Stack{Target: target, Drv: drv, RT: rt}
	s.closers = append(s.closers, target.Stop, drv.Stop)
	return s, nil
}

// Close tears the stack down.
func (s *Stack) Close() {
	for i := len(s.closers) - 1; i >= 0; i-- {
		s.closers[i]()
	}
}

// Defer registers an extra cleanup.
func (s *Stack) Defer(f func()) { s.closers = append(s.closers, f) }

// AppURL is the application-facing URL of the target database.
func (s *Stack) AppURL() string { return "dbms://" + s.Target.Addr() + "/prod" }

// Image builds a dbms-native driver image with credentials baked in.
func (s *Stack) Image(ver dbver.Version, proto uint16, payload int) *driverimg.Image {
	body := make([]byte, payload)
	for i := range body {
		body[i] = byte(i * 31)
	}
	return &driverimg.Image{
		Manifest: driverimg.Manifest{
			Kind:            dbms.DriverKind,
			API:             dbver.APIOf("JDBC", 3, 0),
			Version:         ver,
			ProtocolVersion: proto,
			Options:         map[string]string{"user": "app", "password": "app-pw"},
			Packages:        []string{"core"},
		},
		Payload: body,
	}
}

// Bootloader builds a bootloader against the stack's Drivolution server.
func (s *Stack) Bootloader(opts ...core.BootloaderOption) *core.Bootloader {
	all := append([]core.BootloaderOption{
		core.WithCredentials("app", "app-pw"),
		core.WithDialTimeout(2 * time.Second),
		core.WithRetryInterval(20 * time.Millisecond),
	}, opts...)
	b := core.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{s.Drv.Addr()}, s.RT, all...)
	s.Defer(b.Close)
	return b
}

// LegacyDriver is the conventional static driver for the target.
func (s *Stack) LegacyDriver(proto uint16) client.Driver {
	return dbms.NewNativeDriver(dbver.V(1, 0, 0), proto)
}

// LegacyProps are the connection props a legacy client uses.
func (s *Stack) LegacyProps() client.Props {
	return client.Props{"user": "app", "password": "app-pw"}
}
