package scenarios

import (
	"errors"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/license"
	"repro/internal/sqlmini"
	"repro/internal/workload"
)

// Q1 measures the paper's central operational claim: a traditional
// restart-based driver upgrade disrupts the application; a Drivolution
// hot swap does not. Both run the same workload for the same duration.
func Q1() (*Report, error) {
	r := &Report{ID: "Q1", Title: "Q1 — upgrade disruption: traditional restart vs Drivolution hot swap"}

	const (
		warm        = 60 * time.Millisecond
		manualWork  = 120 * time.Millisecond // stop+uninstall+install+configure, compressed
		cool        = 120 * time.Millisecond
		thinkPeriod = 500 * time.Microsecond
	)

	// --- Traditional: the application must stop for the driver change.
	tradStats, err := func() (workload.Stats, error) {
		s, err := NewStack(StackConfig{})
		if err != nil {
			return workload.Stats{}, err
		}
		defer s.Close()
		run := workload.NewRunner(s.LegacyDriver(1), s.AppURL(), s.LegacyProps())
		run.Workers = 4
		run.Think = thinkPeriod
		run.Start()
		//lint:sleep-ok scripted experiment timeline: warm-up span is part of the measured protocol
		time.Sleep(warm)

		// The upgrade: the app is stopped, the driver replaced, the app
		// restarted. We model "stopped" faithfully: workers' connections
		// die and reconnects fail until the restart completes. Here the
		// application process is simulated by gating the target server.
		addr := s.Target.Addr()
		s.Target.Stop()
		//lint:sleep-ok scripted experiment timeline: manual-upgrade downtime is the quantity under test
		time.Sleep(manualWork)
		if err := s.Target.Start(addr); err != nil {
			return workload.Stats{}, err
		}
		//lint:sleep-ok scripted experiment timeline: cool-down span is part of the measured protocol
		time.Sleep(cool)
		run.Stop()
		return run.Recorder().Stats(), nil
	}()
	if err != nil {
		return r, err
	}

	// --- Drivolution: one insert, hot swap under AFTER_COMMIT.
	drvStats, swapDur, err := func() (workload.Stats, time.Duration, error) {
		s, err := NewStack(StackConfig{})
		if err != nil {
			return workload.Stats{}, 0, err
		}
		defer s.Close()
		if _, err := s.Drv.AddDriver(s.Image(dbver.V(1, 0, 0), 1, 4096), dbver.FormatImage); err != nil {
			return workload.Stats{}, 0, err
		}
		b := s.Bootloader()
		run := workload.NewRunner(b, s.AppURL(), nil)
		run.Workers = 4
		run.Think = thinkPeriod
		run.Start()
		//lint:sleep-ok scripted experiment timeline: warm-up span is part of the measured protocol
		time.Sleep(warm)

		start := time.Now()
		if _, err := s.Drv.AddDriver(s.Image(dbver.V(2, 0, 0), 1, 4096), dbver.FormatImage); err != nil {
			return workload.Stats{}, 0, err
		}
		if err := b.ForceRenew("prod"); err != nil {
			return workload.Stats{}, 0, err
		}
		swap := time.Since(start)
		//lint:sleep-ok scripted experiment timeline: matched observation span for a fair comparison
		time.Sleep(manualWork + cool) // same observation span as traditional
		run.Stop()
		if b.Version() != dbver.V(2, 0, 0) {
			return workload.Stats{}, 0, errors.New("hot swap did not land")
		}
		return run.Recorder().Stats(), swap, nil
	}()
	if err != nil {
		return r, err
	}

	r.logf("traditional: %5d requests, %4d errors (%d retries), error window %8v  (app stopped for driver change)",
		tradStats.Total, tradStats.Errors, tradStats.Retries, tradStats.ErrorWindow.Round(time.Millisecond))
	r.logf("drivolution: %5d requests, %4d errors (%d retries), error window %8v  (hot swap in %v, AFTER_COMMIT)",
		drvStats.Total, drvStats.Errors, drvStats.Retries, drvStats.ErrorWindow.Round(time.Millisecond), swapDur.Round(time.Microsecond))
	shape := tradStats.ErrorWindow > 50*time.Millisecond &&
		drvStats.ErrorWindow < tradStats.ErrorWindow/2
	r.logf("paper's shape (hard outage vs transparent upgrade): %v", mark(shape))
	r.Pass = shape
	return r, nil
}

// Q2 sweeps the lease time and measures the §3.2 trade-off: "Shorter
// lease times allow faster reaction to upgrades but higher traffic to
// the Drivolution Server." It also shows the dedicated push channel
// reacting immediately regardless of lease time.
func Q2() (*Report, error) {
	r := &Report{ID: "Q2", Title: "Q2 — lease time vs server traffic vs upgrade reaction (§3.2)"}
	const observe = 400 * time.Millisecond

	type row struct {
		lease    time.Duration
		requests int64
		reaction time.Duration
		push     bool
	}
	var rows []row

	runOne := func(lease time.Duration, push bool) (row, error) {
		s, err := NewStack(StackConfig{ServerOpts: []core.ServerOption{core.WithDefaultLease(lease)}})
		if err != nil {
			return row{}, err
		}
		defer s.Close()
		if _, err := s.Drv.AddDriver(s.Image(dbver.V(1, 0, 0), 1, 512), dbver.FormatImage); err != nil {
			return row{}, err
		}
		opts := []core.BootloaderOption{core.WithRenewAhead(0.8)}
		if push {
			opts = append(opts, core.WithPushUpdates())
		}
		b := s.Bootloader(opts...)
		if _, err := b.Connect(s.AppURL(), nil); err != nil {
			return row{}, err
		}
		//lint:sleep-ok scripted experiment timeline: half the observation span before the upgrade lands
		time.Sleep(observe / 2)

		// Central upgrade; measure propagation without forcing.
		start := time.Now()
		if _, err := s.Drv.AddDriver(s.Image(dbver.V(2, 0, 0), 1, 512), dbver.FormatImage); err != nil {
			return row{}, err
		}
		deadline := time.Now().Add(observe)
		reaction := time.Duration(-1)
		for time.Now().Before(deadline) {
			if b.Version() == dbver.V(2, 0, 0) {
				reaction = time.Since(start)
				break
			}
			//lint:sleep-ok 2ms fixed cadence bounds the reaction-time measurement error; backoff would coarsen it
			time.Sleep(2 * time.Millisecond)
		}
		reqs, _, _, _, _, _ := s.Drv.Stats()
		return row{lease: lease, requests: reqs, reaction: reaction, push: push}, nil
	}

	for _, lease := range []time.Duration{25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond} {
		rw, err := runOne(lease, false)
		if err != nil {
			return r, err
		}
		rows = append(rows, rw)
	}
	pushRow, err := runOne(200*time.Millisecond, true)
	if err != nil {
		return r, err
	}
	rows = append(rows, pushRow)

	r.logf("%-12s %-16s %-18s %s", "lease", "server requests", "upgrade reaction", "mode")
	for _, rw := range rows {
		mode := "lease pull"
		if rw.push {
			mode = "push channel"
		}
		reaction := "not observed"
		if rw.reaction >= 0 {
			reaction = rw.reaction.Round(time.Millisecond).String()
		}
		r.logf("%-12v %-16d %-18s %s", rw.lease, rw.requests, reaction, mode)
	}
	// Shape: shorter lease → more requests; push reacts despite long lease.
	monotone := rows[0].requests >= rows[2].requests
	pushFast := pushRow.reaction >= 0 && pushRow.reaction < rows[3].lease
	r.logf("shorter lease -> more server traffic: %v; push reacts below one long-lease period: %v",
		mark(monotone), mark(pushFast))
	r.Pass = monotone && pushFast
	return r, nil
}

// SampleCode reproduces Sample code 1 and 2 end to end through the wire
// protocol: preferences, fallback, and permission-table routing.
func SampleCode() (*Report, error) {
	r := &Report{ID: "S", Title: "Sample code 1 & 2 — server-side driver matchmaking"}
	s, err := NewStack(StackConfig{})
	if err != nil {
		return r, err
	}
	defer s.Close()

	// Three drivers: two generic versions and one platform-specific.
	if _, err := s.Drv.AddDriver(s.Image(dbver.V(1, 0, 0), 1, 128), dbver.FormatImage); err != nil {
		return r, err
	}
	if _, err := s.Drv.AddDriver(s.Image(dbver.V(2, 0, 0), 1, 128), dbver.FormatImage); err != nil {
		return r, err
	}
	winImg := s.Image(dbver.V(1, 5, 0), 1, 128)
	winImg.Manifest.Platform = dbver.PlatformWindowsI586
	if _, err := s.Drv.AddDriver(winImg, dbver.FormatImage); err != nil {
		return r, err
	}

	// Preference-free client gets the newest (2.0.0).
	b1 := s.Bootloader()
	if _, err := b1.Connect(s.AppURL(), nil); err != nil {
		return r, err
	}
	got1 := b1.Version()
	r.logf("no preference            -> v%s (newest compatible) %v", got1, mark(got1 == dbver.V(2, 0, 0)))

	// Version preference pins 1.0.0.
	b2 := s.Bootloader(core.WithPreferredVersion(dbver.V(1, 0, 0)))
	if _, err := b2.Connect(s.AppURL(), nil); err != nil {
		return r, err
	}
	got2 := b2.Version()
	r.logf("preferred version 1.0.0  -> v%s %v", got2, mark(got2 == dbver.V(1, 0, 0)))

	// Windows client can also take the platform-specific build via
	// Sample code 1's platform LIKE.
	bw := core.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformWindowsI586,
		[]string{s.Drv.Addr()}, s.RT,
		core.WithCredentials("app", "app-pw"),
		core.WithPreferredVersion(dbver.V(1, 5, 0)),
		core.WithDialTimeout(2*time.Second))
	defer bw.Close()
	if _, err := bw.Connect(s.AppURL(), nil); err != nil {
		return r, err
	}
	got3 := bw.Version()
	r.logf("windows-i586, pref 1.5.0 -> v%s (platform-specific build) %v", got3, mark(got3 == dbver.V(1, 5, 0)))

	// Permission table routes a specific user to the old driver.
	drivers, err := s.Drv.Drivers()
	if err != nil {
		return r, err
	}
	var v1ID int64
	for _, d := range drivers {
		if d.Version == dbver.V(1, 0, 0) {
			v1ID = d.DriverID
		}
	}
	if _, err := s.Drv.SetPermission(core.Permission{
		User: "batch", DriverID: v1ID, LeaseTime: time.Hour,
		RenewPolicy: core.RenewKeep, ExpirationPolicy: core.AfterClose,
		TransferMethod: core.TransferAny,
	}); err != nil {
		return r, err
	}
	bb := s.Bootloader(core.WithCredentials("batch", "any"))
	// Server-side auth is open in this stack; the permission row keys on
	// the request's user.
	if _, err := bb.Connect(s.AppURL(), client.Props{"user": "app", "password": "app-pw"}); err != nil {
		return r, err
	}
	got4 := bb.Version()
	r.logf("user 'batch' permission  -> v%s (Sample code 2 routing) %v", got4, mark(got4 == dbver.V(1, 0, 0)))

	r.Pass = got1 == dbver.V(2, 0, 0) && got2 == dbver.V(1, 0, 0) &&
		got3 == dbver.V(1, 5, 0) && got4 == dbver.V(1, 0, 0)
	return r, nil
}

// Assembly reproduces §5.4.1: NLS/GIS/Kerberos feature packages
// assembled into customized drivers on demand.
func Assembly() (*Report, error) {
	r := &Report{ID: "A", Title: "§5.4.1 — assembling drivers on demand"}
	ps := driverimg.NewPackageStore()
	ps.AddPackage("nls-fr", make([]byte, 2048), map[string]string{"locale": "fr"})
	ps.AddPackage("gis", make([]byte, 8192), map[string]string{"gis": "enabled"})
	ps.AddPackage("kerberos", make([]byte, 4096), map[string]string{"auth": "krb5"})

	s, err := NewStack(StackConfig{ServerOpts: []core.ServerOption{core.WithPackages(ps)}})
	if err != nil {
		return r, err
	}
	defer s.Close()
	if _, err := s.Drv.AddDriver(s.Image(dbver.V(1, 0, 0), 1, 1024), dbver.FormatImage); err != nil {
		return r, err
	}

	base := s.Bootloader()
	if _, err := base.Connect(s.AppURL(), nil); err != nil {
		return r, err
	}
	baseBytes := base.Stats().BytesFetched

	gis := s.Bootloader(core.WithRequiredPackages("gis"))
	if _, err := gis.Connect(s.AppURL(), nil); err != nil {
		return r, err
	}
	gisBytes := gis.Stats().BytesFetched

	full := s.Bootloader(core.WithRequiredPackages("gis", "nls-fr", "kerberos"))
	if _, err := full.Connect(s.AppURL(), nil); err != nil {
		return r, err
	}
	fullBytes := full.Stats().BytesFetched

	r.logf("base driver:                    %6d bytes", baseBytes)
	r.logf("base + gis:                     %6d bytes", gisBytes)
	r.logf("base + gis + nls-fr + kerberos: %6d bytes", fullBytes)
	r.logf("clients fetch only the features they request (paper: \"prevents applications")
	r.logf("from loading an unnecessary large driver\")")
	ordered := baseBytes < gisBytes && gisBytes < fullBytes
	r.logf("sizes strictly ordered by feature set: %v", mark(ordered))
	r.Pass = ordered
	return r, nil
}

// License reproduces §5.4.2: Drivolution as a per-user license server
// with failure detection through the database engine.
func License() (*Report, error) {
	r := &Report{ID: "L", Title: "§5.4.2 — Drivolution as a license server"}

	appDB := sqlmini.NewDB()
	appDB.MustExec("CREATE TABLE t (x INTEGER)")
	target := dbms.NewServer("db", dbms.WithUser("u1", "pw"), dbms.WithUser("u2", "pw"))
	target.AddDatabase("prod", appDB)
	if err := target.Start("127.0.0.1:0"); err != nil {
		return r, err
	}
	defer target.Stop()

	srv, err := core.NewServer("license", core.NewLocalStore(sqlmini.NewDB()),
		core.WithLicenseMode(), core.WithDefaultLease(time.Hour))
	if err != nil {
		return r, err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return r, err
	}
	defer srv.Stop()
	img := &driverimg.Image{
		Manifest: driverimg.Manifest{
			Kind: dbms.DriverKind, API: dbver.APIOf("JDBC", 3, 0),
			Version: dbver.V(1, 0, 0), ProtocolVersion: 1,
		},
		Payload: []byte("per-user license key"),
	}
	if _, err := srv.AddDriver(img, dbver.FormatImage); err != nil {
		return r, err
	}

	rt := driverimg.NewRuntime()
	rt.Register(dbms.DriverKind, dbms.ImageFactory())
	mkBL := func(user, id string) *core.Bootloader {
		return core.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
			[]string{srv.Addr()}, rt,
			core.WithCredentials(user, "pw"), core.WithClientID(id),
			core.WithDialTimeout(time.Second))
	}
	url := "dbms://" + target.Addr() + "/prod"

	b1 := mkBL("u1", "c1")
	defer b1.Close()
	c1, err := b1.Connect(url, client.Props{"user": "u1", "password": "pw"})
	if err != nil {
		return r, err
	}
	r.logf("client 1 acquires the license (lease %d)", b1.LeaseID())

	b2 := mkBL("u2", "c2")
	defer b2.Close()
	_, err2 := b2.Connect(url, client.Props{"user": "u2", "password": "pw"})
	var pe *core.ProtocolError
	denied := errors.As(err2, &pe) && pe.Code == core.ErrCodeNoDriver
	r.logf("client 2 denied while license is held: %v", mark(denied))

	// Client 1 crashes; the DBMS-integrated failure detector reclaims.
	_ = c1.Close()
	b1.Close()
	deadline := time.Now().Add(2 * time.Second)
	pollUntil(deadline, func() bool { return !target.UserHasSession("u1") })
	mgr := license.NewManager(srv, license.DetectorFromDBMS(target))
	n, err := mgr.SweepOnce()
	if err != nil {
		return r, err
	}
	r.logf("client 1 crashes; engine shows no session; manager reclaims %d license %v", n, mark(n == 1))

	_, err3 := b2.Connect(url, client.Props{"user": "u2", "password": "pw"})
	r.logf("client 2 acquires the freed license: %v", mark(err3 == nil))
	r.Pass = denied && n == 1 && err3 == nil
	return r, nil
}
