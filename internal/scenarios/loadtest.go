package scenarios

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/faultnet"
	"repro/internal/sqlmini"
	"repro/internal/workload"
)

// This file is the fleet-scale tier: four canonical load scenarios
// driving 100k+ *simulated* bootloaders (workload.Fleet virtual
// clients over a bounded connection pool) against a real Drivolution
// server, reporting tail latencies from mergeable histograms plus the
// exact server-side statement rate. cmd/experiments -load runs them at
// full population into BENCH_tail.json; loadtest_test.go runs the
// same scenarios scaled down as the deterministic storm/soak test
// tier.

// LoadScenarios lists the canonical load scenarios in run order.
func LoadScenarios() []string {
	return []string{"steady", "storm", "license", "restart"}
}

// LoadConfig parameterizes one load scenario; zero fields take the
// defaults noted per field.
type LoadConfig struct {
	// Population is the number of simulated bootloaders (default 1000).
	Population int
	// Workers is the real-connection pool size (default 8).
	Workers int
	// Duration is the measured steady phase, after the bootstrap ramp
	// (default 5s).
	Duration time.Duration
	// Seed fixes every schedule decision (default 1).
	Seed int64
	// Lease is the server's default lease term. The default scales
	// with population (1.5ms per client, floor 2s) so the renewal rate
	// stays within a single box's capacity at 100k+ clients while
	// small runs still turn over several lease periods. The scaling is
	// sized from measured capacity: one core sustains ~1.7k req/s with
	// a 100k-row lease log (writes serialize on the table latch), and
	// 1.5ms/client puts steady renewal demand near 930 req/s at 100k —
	// a bit under 2x headroom so the schedule never falls behind.
	Lease time.Duration
	// Payload is the driver blob size in bytes (default 1KiB).
	Payload int
	// Cluster is the member count for the cluster scenario (default
	// 3); the single-server scenarios ignore it.
	Cluster int
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Population <= 0 {
		c.Population = 1000
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Lease <= 0 {
		c.Lease = time.Duration(c.Population) * 1500 * time.Microsecond
		if c.Lease < 2*time.Second {
			c.Lease = 2 * time.Second
		}
	}
	if c.Payload <= 0 {
		c.Payload = 1 << 10
	}
	return c
}

// LoadResult is one scenario's outcome, shaped for BENCH_tail.json:
// flat keys, one metric per line once marshaled with indentation, so
// scripts/loadtest.sh can compare runs with awk alone.
type LoadResult struct {
	Scenario   string `json:"scenario"`
	Population int    `json:"population"`
	Workers    int    `json:"workers"`
	Seed       int64  `json:"seed"`

	ElapsedMs      float64 `json:"elapsed_ms"`
	Requests       int     `json:"requests"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	// StatementsPerSec is the exact server-side store statement rate
	// (counted at the Store boundary), not an estimate: in steady
	// state a no-change renewal is exactly one guarded UPDATE, so this
	// tracks RequestsPerSec; grant-heavy phases run several statements
	// per request.
	StatementsPerSec float64 `json:"statements_per_sec"`

	Errors        int     `json:"errors"`
	Timeouts      int     `json:"timeouts"`
	ErrorWindowMs float64 `json:"error_window_ms"`

	P50Us float64 `json:"p50_us"`
	P95Us float64 `json:"p95_us"`
	P99Us float64 `json:"p99_us"`
	MaxUs float64 `json:"max_us"`

	Upgrades         int64   `json:"upgrades"`
	Denied           int64   `json:"denied"`
	Rebootstraps     int64   `json:"rebootstraps"`
	Redirects        int64   `json:"redirects"`
	TransferBytes    int64   `json:"transfer_bytes"`
	ScheduleLagMaxMs float64 `json:"schedule_lag_max_ms"`

	// ConvergeMs is how long the fleet took to fully adopt the new
	// driver generation after AddDriver (storm/restart scenarios).
	ConvergeMs float64 `json:"converge_ms"`
	// PeakLicenses / LicenseCap report the license scenario's observed
	// peak seats in use against the configured cap.
	PeakLicenses int `json:"peak_licenses"`
	LicenseCap   int `json:"license_cap"`
}

// RunLoad runs one canonical load scenario by name.
func RunLoad(name string, cfg LoadConfig) (*LoadResult, error) {
	cfg = cfg.withDefaults()
	switch name {
	case "steady":
		return loadSteady(cfg)
	case "storm":
		return loadStorm(cfg)
	case "license":
		return loadLicense(cfg)
	case "restart":
		return loadRestart(cfg)
	case "cluster":
		// The opt-in multi-member tier (`make loadtest CLUSTER=3`);
		// not in LoadScenarios so `-load all` stays single-server.
		return loadCluster(cfg)
	default:
		return nil, fmt.Errorf("scenarios: unknown load scenario %q (have %v plus \"cluster\")", name, LoadScenarios())
	}
}

// countingStore wraps a LocalStore and counts every statement crossing
// the Store boundary — both direct Execs and executions of prepared
// handles. Embedding keeps the LocalStore's interface upgrades
// (GenerationStore, BatchStore) visible, so the server's catalog cache
// and grant path behave exactly as in production; only Exec/Prepare
// are intercepted.
type countingStore struct {
	*core.LocalStore
	stmts atomic.Int64
}

func (c *countingStore) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	c.stmts.Add(1)
	return c.LocalStore.Exec(sql, args...)
}

func (c *countingStore) Prepare(sql string) (core.Stmt, error) {
	h, err := c.LocalStore.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &countingStmt{Stmt: h, n: &c.stmts}, nil
}

type countingStmt struct {
	core.Stmt
	n *atomic.Int64
}

func (s *countingStmt) Exec(args ...any) (*sqlmini.Result, error) {
	s.n.Add(1)
	return s.Stmt.Exec(args...)
}

// loadServer boots a Drivolution server for a load scenario and
// returns it with its statement counter.
func loadServer(cfg LoadConfig, opts ...core.ServerOption) (*core.Server, *countingStore, error) {
	store := &countingStore{LocalStore: core.NewLocalStore(sqlmini.NewDB())}
	opts = append([]core.ServerOption{core.WithDefaultLease(cfg.Lease)}, opts...)
	srv, err := core.NewServer("load-drv", store, opts...)
	if err != nil {
		return nil, nil, err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, nil, err
	}
	return srv, store, nil
}

// loadImage builds a driver image for load scenarios (same shape the
// Stack fixture uses; the fleet never runs it, so credentials only
// need to satisfy matching).
func loadImage(ver dbver.Version, payload int) *driverimg.Image {
	body := make([]byte, payload)
	for i := range body {
		body[i] = byte(i*31 + int(ver.Major))
	}
	return &driverimg.Image{
		Manifest: driverimg.Manifest{
			Kind:            dbms.DriverKind,
			API:             dbver.APIOf("JDBC", 3, 0),
			Version:         ver,
			ProtocolVersion: 1,
			Options:         map[string]string{"user": "app", "password": "app-pw"},
		},
		Payload: body,
	}
}

// fleetFor builds the fleet for a load scenario pointed at addr.
func fleetFor(cfg LoadConfig, addr string) (*workload.Fleet, error) {
	return workload.NewFleet(workload.FleetConfig{
		Addr:           addr,
		Database:       "prod",
		User:           "app",
		Password:       "app-pw",
		Population:     cfg.Population,
		Workers:        cfg.Workers,
		Seed:           cfg.Seed,
		RampUp:         rampFor(cfg),
		RenewAhead:     0.8,
		RetryInterval:  cfg.Lease / 4,
		OpTimeout:      5 * time.Second,
		FetchOnUpgrade: true,
	})
}

// rampFor spreads bootstraps over most of a lease term so the grant
// burst (several statements per request, vs one per renewal) stays
// within capacity even at 100k clients.
func rampFor(cfg LoadConfig) time.Duration {
	r := cfg.Lease * 3 / 4
	if r < 500*time.Millisecond {
		r = 500 * time.Millisecond
	}
	return r
}

// result folds a fleet report and the server-side statement count
// (from the countingStore, or table-version deltas for the cluster
// tier) into the persisted shape.
func result(name string, cfg LoadConfig, rep workload.FleetReport, stmts int64) *LoadResult {
	stmtRate := 0.0
	if rep.Elapsed > 0 {
		stmtRate = float64(stmts) / rep.Elapsed.Seconds()
	}
	return &LoadResult{
		Scenario:         name,
		Population:       cfg.Population,
		Workers:          cfg.Workers,
		Seed:             cfg.Seed,
		ElapsedMs:        float64(rep.Elapsed) / float64(time.Millisecond),
		Requests:         rep.Stats.Total,
		RequestsPerSec:   rep.RequestsPerSec,
		StatementsPerSec: stmtRate,
		Errors:           rep.Stats.Errors,
		Timeouts:         rep.Stats.Timeouts,
		ErrorWindowMs:    float64(rep.Stats.ErrorWindow) / float64(time.Millisecond),
		P50Us:            float64(rep.Stats.P50) / float64(time.Microsecond),
		P95Us:            float64(rep.Stats.P95) / float64(time.Microsecond),
		P99Us:            float64(rep.Stats.P99) / float64(time.Microsecond),
		MaxUs:            float64(rep.Stats.Max) / float64(time.Microsecond),
		Upgrades:         rep.Upgrades,
		Denied:           rep.Denied,
		Rebootstraps:     rep.Rebootstraps,
		Redirects:        rep.Redirects,
		TransferBytes:    rep.TransferBytes,
		ScheduleLagMaxMs: float64(rep.ScheduleLagMax) / float64(time.Millisecond),
	}
}

// loadSteady is the steady-state renewal fleet: every client
// bootstraps during the ramp and then renews on its jittered schedule.
// The tail of this scenario is the paper's steady-state overhead claim
// at fleet scale: renewals must stay cheap (one guarded UPDATE) no
// matter how many clients hold leases.
func loadSteady(cfg LoadConfig) (*LoadResult, error) {
	srv, store, err := loadServer(cfg)
	if err != nil {
		return nil, err
	}
	defer srv.Stop()
	if _, err := srv.AddDriver(loadImage(dbver.V(1, 0, 0), cfg.Payload), dbver.FormatImage); err != nil {
		return nil, err
	}
	f, err := fleetFor(cfg, srv.Addr())
	if err != nil {
		return nil, err
	}
	rep := f.RunFor(rampFor(cfg) + cfg.Duration)
	res := result("steady", cfg, rep, store.stmts.Load())
	if rep.Stats.Errors != 0 {
		return res, fmt.Errorf("steady-state fleet saw %d errors: %s", rep.Stats.Errors, rep)
	}
	if rep.Live != cfg.Population {
		return res, fmt.Errorf("steady-state fleet: %d/%d clients hold a lease", rep.Live, cfg.Population)
	}
	return res, nil
}

// pollPolicy is the schedule fleet-condition polls run on: short first
// probes so fast scenarios finish fast, capped growth so slow ones
// are still sampled often enough, jitter disabled so scenario timings
// stay deterministic run to run.
var pollPolicy = faultnet.Policy{
	Initial: 2 * time.Millisecond,
	Max:     20 * time.Millisecond,
	Factor:  2,
	Jitter:  -1,
}

// pollUntil re-probes cond on the pollPolicy schedule until it holds
// or the deadline passes.
func pollUntil(deadline time.Time, cond func() bool) bool {
	b := faultnet.NewBackoff(pollPolicy)
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		b.Sleep(nil)
	}
	return true
}

// settle waits until every client holds a lease (or deadline).
func settle(f *workload.Fleet, cfg LoadConfig) error {
	deadline := time.Now().Add(rampFor(cfg) + cfg.Lease + 30*time.Second)
	if !pollUntil(deadline, func() bool { return f.Live() >= cfg.Population }) {
		return fmt.Errorf("fleet stuck settling: %d/%d live", f.Live(), cfg.Population)
	}
	return nil
}

// waitConverged polls until the whole population runs a generation
// that was not present before the storm, returning the time it took.
func waitConverged(f *workload.Fleet, cfg LoadConfig, before map[string]int, patience time.Duration) (time.Duration, error) {
	start := time.Now()
	deadline := start.Add(patience)
	converged := func() bool {
		sums := f.Checksums()
		if len(sums) != 1 {
			return false
		}
		for sum, n := range sums {
			if _, old := before[sum]; !old && n == cfg.Population {
				return true
			}
		}
		return false
	}
	if !pollUntil(deadline, converged) {
		return 0, fmt.Errorf("fleet did not converge to the new driver generation: %v", f.Checksums())
	}
	return time.Since(start), nil
}

// loadStorm is the upgrade storm: a settled fleet, then one AddDriver
// publishes a new generation and every renewal turns into an upgrade
// offer + transfer. The scenario measures how long fleet-wide hot-swap
// takes and what it does to the tail.
func loadStorm(cfg LoadConfig) (*LoadResult, error) {
	srv, store, err := loadServer(cfg)
	if err != nil {
		return nil, err
	}
	defer srv.Stop()
	if _, err := srv.AddDriver(loadImage(dbver.V(1, 0, 0), cfg.Payload), dbver.FormatImage); err != nil {
		return nil, err
	}
	f, err := fleetFor(cfg, srv.Addr())
	if err != nil {
		return nil, err
	}
	f.Start()
	defer f.Stop()
	if err := settle(f, cfg); err != nil {
		return nil, err
	}
	before := f.Checksums()

	if _, err := srv.AddDriver(loadImage(dbver.V(2, 0, 0), cfg.Payload), dbver.FormatImage); err != nil {
		return nil, err
	}
	// Convergence needs every client to renew once: a bit over one
	// lease term, padded generously for loaded CI boxes.
	converge, err := waitConverged(f, cfg, before, 2*cfg.Lease+30*time.Second)
	if err != nil {
		return nil, err
	}
	f.Stop()
	rep := f.Report()
	res := result("storm", cfg, rep, store.stmts.Load())
	res.ConvergeMs = float64(converge) / float64(time.Millisecond)
	if rep.Stats.Errors != 0 {
		return res, fmt.Errorf("upgrade storm saw %d errors: %s", rep.Stats.Errors, rep)
	}
	if rep.Upgrades < int64(cfg.Population) {
		return res, fmt.Errorf("upgrade storm: only %d/%d clients upgraded", rep.Upgrades, cfg.Population)
	}
	return res, nil
}

// loadLicense is contention at the license cap: half as many seats as
// clients (license mode, single-lease drivers), with release churn so
// capacity circulates. The invariant — the server never grants more
// seats than the cap — is sampled throughout the run.
func loadLicense(cfg LoadConfig) (*LoadResult, error) {
	seats := cfg.Population / 2
	if seats < 1 {
		seats = 1
	}
	srv, store, err := loadServer(cfg,
		core.WithLicenseMode(),
		// Seats are interchangeable license copies: renewals must keep
		// the granted seat, not churn between copies as upgrades.
		core.WithDefaultPolicies(core.RenewKeep, core.AfterCommit))
	if err != nil {
		return nil, err
	}
	defer srv.Stop()
	for i := 0; i < seats; i++ {
		if _, err := srv.AddDriver(loadImage(dbver.V(1, 0, i), cfg.Payload), dbver.FormatImage); err != nil {
			return nil, err
		}
	}

	fc := workload.FleetConfig{
		Addr:                 srv.Addr(),
		Database:             "prod",
		User:                 "app",
		Password:             "app-pw",
		Population:           cfg.Population,
		Workers:              cfg.Workers,
		Seed:                 cfg.Seed,
		RampUp:               rampFor(cfg),
		RenewAhead:           0.8,
		RetryInterval:        cfg.Lease / 4,
		OpTimeout:            5 * time.Second,
		ReleaseAfterRenewals: 2,
	}
	f, err := workload.NewFleet(fc)
	if err != nil {
		return nil, err
	}
	f.Start()

	// Sample the server-side seat count while the fleet contends.
	peak := 0
	stopAt := time.Now().Add(rampFor(cfg) + cfg.Duration)
	for time.Now().Before(stopAt) {
		n, lerr := srv.LicensesInUse()
		if lerr != nil {
			f.Stop()
			return nil, lerr
		}
		if n > peak {
			peak = n
		}
		//lint:sleep-ok fixed-cadence seat sampling; backoff would undersample the peak
		time.Sleep(10 * time.Millisecond)
	}
	f.Stop()
	rep := f.Report()
	res := result("license", cfg, rep, store.stmts.Load())
	res.PeakLicenses = peak
	res.LicenseCap = seats
	if peak > seats {
		return res, fmt.Errorf("license cap exceeded: peak %d seats, cap %d", peak, seats)
	}
	if rep.Denied == 0 {
		return res, fmt.Errorf("no denials with %d clients contending for %d seats", cfg.Population, seats)
	}
	return res, nil
}

// loadRestart is the worst day: an upgrade storm with flaky client
// connections (every 8th connection through the fault proxy is
// rejected) and a full server restart mid-storm. The fleet must ride
// it out — keep lease identities through the outage (leases survive in
// the store), re-dial on the jittered backoff, and still converge to
// the new generation — with the error window bounded by the outage,
// not the fleet size.
func loadRestart(cfg LoadConfig) (*LoadResult, error) {
	srv, store, err := loadServer(cfg)
	if err != nil {
		return nil, err
	}
	defer srv.Stop()
	if _, err := srv.AddDriver(loadImage(dbver.V(1, 0, 0), cfg.Payload), dbver.FormatImage); err != nil {
		return nil, err
	}
	addr := srv.Addr()

	proxy, err := faultnet.NewProxy(addr, cfg.Seed)
	if err != nil {
		return nil, err
	}
	defer proxy.Close()
	proxy.SetPlanner(func(i int, _ *rand.Rand) faultnet.Plan {
		return faultnet.Plan{Reject: i%8 == 7}
	})

	f, err := fleetFor(cfg, proxy.Addr())
	if err != nil {
		return nil, err
	}
	f.Start()
	defer f.Stop()
	if err := settle(f, cfg); err != nil {
		return nil, err
	}
	before := f.Checksums()

	// Publish the new generation, let the storm get going, then
	// restart the server under it.
	if _, err := srv.AddDriver(loadImage(dbver.V(2, 0, 0), cfg.Payload), dbver.FormatImage); err != nil {
		return nil, err
	}
	//lint:sleep-ok scripted outage timeline: the storm must be mid-flight when the server dies
	time.Sleep(cfg.Lease / 4)
	srv.Stop()
	outage := cfg.Lease / 2
	//lint:sleep-ok scripted outage timeline: the outage length is the variable under test
	time.Sleep(outage)
	if err := restartOn(srv, addr); err != nil {
		return nil, err
	}

	converge, err := waitConverged(f, cfg, before, 4*cfg.Lease+60*time.Second)
	if err != nil {
		return nil, err
	}
	f.Stop()
	rep := f.Report()
	res := result("restart", cfg, rep, store.stmts.Load())
	res.ConvergeMs = float64(converge) / float64(time.Millisecond)
	if rep.Stats.Errors == 0 {
		return res, fmt.Errorf("restart storm saw no errors — the outage was not exercised")
	}
	// The error window must track the outage, not the run length: the
	// whole fleet may fail during the outage, but failures stop once
	// clients' jittered retries land after the restart.
	bound := outage + 2*cfg.Lease
	if rep.Stats.ErrorWindow > bound {
		return res, fmt.Errorf("availability loss not bounded: error window %v > %v (outage %v + 2 lease terms)",
			rep.Stats.ErrorWindow, bound, outage)
	}
	return res, nil
}

// restartOn rebinds a stopped server to its old address, retrying
// briefly in case the kernel hasn't released the port yet.
func restartOn(srv *core.Server, addr string) error {
	b := faultnet.NewBackoff(faultnet.Policy{
		Initial:     5 * time.Millisecond,
		Max:         100 * time.Millisecond,
		Factor:      2,
		Jitter:      -1,
		MaxAttempts: 50,
	})
	var err error
	for {
		if err = srv.Start(addr); err == nil {
			return nil
		}
		if !b.Sleep(nil) {
			return fmt.Errorf("scenarios: server restart on %s: %w", addr, err)
		}
	}
}
