package scenarios

import (
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dbver"
	"repro/internal/opsmodel"
	"repro/internal/sqlmini"
)

// T1 reproduces Table 1: the drivers information-schema table, created
// and populated through the live schema path, columns verified against
// the paper's definition.
func T1() (*Report, error) {
	r := &Report{ID: "T1", Title: "Table 1 — information schema driver table definition"}
	db := sqlmini.NewDB()
	st := core.NewLocalStore(db)
	if err := core.EnsureSchema(st); err != nil {
		return r, err
	}
	//lint:scan-ok schema introspection: LIMIT 0 reads column metadata, no rows
	res, err := db.Query("SELECT * FROM " + core.DriversTable + " LIMIT 0")
	if err != nil {
		return r, err
	}
	want := []string{
		"driver_id", "api_name", "api_version_major", "api_version_minor",
		"platform", "driver_version_major", "driver_version_minor",
		"driver_version_micro", "binary_code", "binary_format",
	}
	r.logf("%-24s (paper Table 1 columns)", core.DriversTable)
	ok := len(res.Cols) == len(want)
	for i, c := range want {
		got := ""
		if i < len(res.Cols) {
			got = res.Cols[i]
		}
		match := got == c
		ok = ok && match
		r.logf("  %-24s %v", c, mark(match))
	}
	// Constraint spot-checks.
	_, errPK := db.Exec("INSERT INTO "+core.DriversTable+
		" (driver_id, api_name, binary_code, binary_format) VALUES (1, 'JDBC', ?, 'IMAGE')", []byte{1})
	_, errDup := db.Exec("INSERT INTO "+core.DriversTable+
		" (driver_id, api_name, binary_code, binary_format) VALUES (1, 'JDBC', ?, 'IMAGE')", []byte{1})
	r.logf("  PRIMARY KEY enforced: %v", mark(errPK == nil && errDup != nil))
	ok = ok && errPK == nil && errDup != nil
	r.Pass = ok
	return r, nil
}

// T2 reproduces Table 2: the driver_permission table with its policy
// encodings.
func T2() (*Report, error) {
	r := &Report{ID: "T2", Title: "Table 2 — driver_permission table description"}
	db := sqlmini.NewDB()
	st := core.NewLocalStore(db)
	if err := core.EnsureSchema(st); err != nil {
		return r, err
	}
	//lint:scan-ok schema introspection: LIMIT 0 reads column metadata, no rows
	res, err := db.Query("SELECT * FROM " + core.PermissionTable + " LIMIT 0")
	if err != nil {
		return r, err
	}
	want := []string{
		"user", "client_ip", "database", "driver_id", "driver_options",
		"start_date", "end_date", "lease_time_in_ms", "renew_policy",
		"expiration_policy", "transfer_method",
	}
	ok := true
	r.logf("%s (paper Table 2 columns)", core.PermissionTable)
	cols := strings.Join(res.Cols, ",")
	for _, c := range want {
		match := strings.Contains(cols, c)
		ok = ok && match
		r.logf("  %-20s %v", c, mark(match))
	}
	r.logf("policy encodings: RENEW=%d UPGRADE=%d REVOKE=%d | AFTER_CLOSE=%d AFTER_COMMIT=%d IMMEDIATE=%d | ANY=%d",
		core.RenewKeep, core.RenewUpgrade, core.RenewRevoke,
		core.AfterClose, core.AfterCommit, core.Immediate, core.TransferAny)
	encOK := core.RenewKeep == 0 && core.RenewUpgrade == 1 && core.RenewRevoke == 2 &&
		core.AfterClose == 0 && core.AfterCommit == 1 && core.Immediate == 2 &&
		core.TransferAny == -1
	r.logf("  encodings match paper: %v", mark(encOK))
	r.Pass = ok && encOK
	return r, nil
}

// T3 reproduces Table 3: the bootstrap protocol, traced end to end over
// TCP with message and byte counts.
func T3() (*Report, error) {
	r := &Report{ID: "T3", Title: "Table 3 — Drivolution bootstrap protocol"}
	s, err := NewStack(StackConfig{})
	if err != nil {
		return r, err
	}
	defer s.Close()
	const payload = 64 << 10
	if _, err := s.Drv.AddDriver(s.Image(dbver.V(1, 0, 0), 1, payload), dbver.FormatImage); err != nil {
		return r, err
	}

	b := s.Bootloader()
	start := time.Now()
	c, err := b.Connect(s.AppURL(), nil)
	if err != nil {
		return r, err
	}
	bootstrap := time.Since(start)
	defer c.Close()
	if _, err := c.Query("SELECT count(*) FROM items"); err != nil {
		return r, err
	}

	reqs, offers, errsSent, transfers, bytesOut, _ := s.Drv.Stats()
	m := b.Stats()
	r.logf("bootloader -> DRIVOLUTION_REQUEST -> server")
	r.logf("server     -> DRIVOLUTION_OFFER (lease %d)", b.LeaseID())
	r.logf("bootloader -> FILE_REQUEST; server -> FILE_DATA (%d bytes)", m.BytesFetched)
	r.logf("bootloader: decode(binary_format, binary_code); load(...)")
	r.logf("bootstrap latency: %v; first query OK through loaded driver", bootstrap.Round(time.Microsecond))
	r.logf("server counters: requests=%d offers=%d errors=%d transfers=%d bytes=%d",
		reqs, offers, errsSent, transfers, bytesOut)
	r.Pass = m.Bootstraps == 1 && transfers == 1 && m.BytesFetched >= payload && errsSent == 0
	return r, nil
}

// T4 reproduces Table 4: the renewal protocol, exercising the RENEW,
// UPGRADE, and REVOKE branches and all three expiration policies.
func T4() (*Report, error) {
	r := &Report{ID: "T4", Title: "Table 4 — lease renewal protocol (3 branches x 3 policies)"}
	pass := true

	// Branch 1: RENEW (driver still valid → OFFER without data).
	{
		s, err := NewStack(StackConfig{})
		if err != nil {
			return r, err
		}
		if _, err := s.Drv.AddDriver(s.Image(dbver.V(1, 0, 0), 1, 1024), dbver.FormatImage); err != nil {
			s.Close()
			return r, err
		}
		b := s.Bootloader()
		if _, err := b.Connect(s.AppURL(), nil); err != nil {
			s.Close()
			return r, err
		}
		_, _, _, before, _, _ := s.Drv.Stats()
		err = b.ForceRenew("prod")
		_, _, _, after, _, _ := s.Drv.Stats()
		ok := err == nil && b.Stats().Renewals == 1 && before == after
		r.logf("RENEW branch: OFFER without data, lease extended, no transfer  %v", mark(ok))
		pass = pass && ok
		s.Close()
	}

	// Branch 2: UPGRADE under each expiration policy.
	for _, pol := range []core.ExpirationPolicy{core.AfterClose, core.AfterCommit, core.Immediate} {
		s, err := NewStack(StackConfig{})
		if err != nil {
			return r, err
		}
		id1, err := s.Drv.AddDriver(s.Image(dbver.V(1, 0, 0), 1, 1024), dbver.FormatImage)
		if err != nil {
			s.Close()
			return r, err
		}
		if _, err := s.Drv.SetPermission(core.Permission{
			DriverID: id1, LeaseTime: time.Hour,
			RenewPolicy: core.RenewUpgrade, ExpirationPolicy: pol, TransferMethod: core.TransferAny,
		}); err != nil {
			s.Close()
			return r, err
		}
		b := s.Bootloader()
		idle, err := b.Connect(s.AppURL(), nil)
		if err != nil {
			s.Close()
			return r, err
		}
		busy, err := b.Connect(s.AppURL(), nil)
		if err != nil {
			s.Close()
			return r, err
		}
		_ = busy.Begin()
		_, _ = busy.Exec("UPDATE items SET name = 'wip' WHERE id = 1")

		id2, err := s.Drv.AddDriver(s.Image(dbver.V(2, 0, 0), 1, 1024), dbver.FormatImage)
		if err != nil {
			s.Close()
			return r, err
		}
		if _, err := s.Drv.SetPermission(core.Permission{
			DriverID: id2, LeaseTime: time.Hour,
			RenewPolicy: core.RenewUpgrade, ExpirationPolicy: pol, TransferMethod: core.TransferAny,
		}); err != nil {
			s.Close()
			return r, err
		}
		if err := b.ForceRenew("prod"); err != nil {
			s.Close()
			return r, err
		}
		m := b.Stats()
		_, idleErr := idle.Query("SELECT 1")
		var ok bool
		switch pol {
		case core.AfterClose:
			// both connections keep working until app closes them
			_, busyErr := busy.Exec("UPDATE items SET name = 'still' WHERE id = 1")
			ok = idleErr == nil && busyErr == nil && m.ForcedCloses == 0
		case core.AfterCommit:
			// idle closed now; busy drains at commit
			commitErr := busy.Commit()
			_, afterErr := busy.Query("SELECT 1")
			ok = idleErr != nil && commitErr == nil && afterErr != nil &&
				m.AbortedTx == 0
		case core.Immediate:
			_, busyErr := busy.Exec("SELECT 1")
			ok = idleErr != nil && busyErr != nil && b.Stats().AbortedTx == 1
		}
		ok = ok && m.Upgrades == 1 && b.Version() == dbver.V(2, 0, 0)
		r.logf("UPGRADE branch, %-12s: new conns on v2, old conns transitioned  %v", pol, mark(ok))
		pass = pass && ok
		s.Close()
	}

	// Branch 3: REVOKE (no driver available → DRIVOLUTION_ERROR).
	{
		s, err := NewStack(StackConfig{})
		if err != nil {
			return r, err
		}
		id, err := s.Drv.AddDriver(s.Image(dbver.V(1, 0, 0), 1, 1024), dbver.FormatImage)
		if err != nil {
			s.Close()
			return r, err
		}
		b := s.Bootloader()
		if _, err := b.Connect(s.AppURL(), nil); err != nil {
			s.Close()
			return r, err
		}
		if err := s.Drv.DeleteDriver(id); err != nil {
			s.Close()
			return r, err
		}
		renewErr := b.ForceRenew("prod")
		_, connErr := b.Connect(s.AppURL(), nil)
		ok := renewErr != nil && connErr != nil && b.Stats().Revocations == 1
		r.logf("REVOKE branch: DRIVOLUTION_ERROR, new connections blocked       %v", mark(ok))
		pass = pass && ok
		s.Close()
	}

	r.Pass = pass
	return r, nil
}

// T5 reproduces Table 5: DBA procedures with and without Drivolution,
// executing the Drivolution side live and counting steps.
func T5() (*Report, error) {
	r := &Report{ID: "T5", Title: "Table 5 — driver tasks for 2 DBAs, current vs Drivolution"}

	for _, row := range opsmodel.Table5() {
		r.logf("%s:", row.Task)
		r.logf("  current state-of-the-art (%d steps):", len(row.Current))
		for i, s := range row.Current {
			r.logf("    %d. %s", i+1, s)
		}
		r.logf("  Drivolution (%d steps):", len(row.Drivolution))
		for i, s := range row.Drivolution {
			r.logf("    %d. %s", i+1, s)
		}
	}

	// Execute the Drivolution side against a live stack: two DBA
	// consoles "just connect"; upgrading is insert + revoke.
	s, err := NewStack(StackConfig{})
	if err != nil {
		return r, err
	}
	defer s.Close()
	id1, err := s.Drv.AddDriver(s.Image(dbver.V(1, 0, 0), 1, 512), dbver.FormatImage)
	if err != nil {
		return r, err
	}

	liveSteps := 0
	for i := 0; i < 2; i++ { // DBA1, DBA2 connect — one step each
		b := s.Bootloader()
		if _, err := b.Connect(s.AppURL(), nil); err != nil {
			return r, err
		}
		liveSteps++
	}
	accessOK := liveSteps == 2
	r.logf("live run, accessing a new database: %d Drivolution steps executed %v", liveSteps, mark(accessOK))

	// Upgrade: 1. insert drivers in database, 2. revoke old driver.
	liveSteps = 0
	if _, err := s.Drv.AddDriver(s.Image(dbver.V(2, 0, 0), 1, 512), dbver.FormatImage); err != nil {
		return r, err
	}
	liveSteps++
	if err := s.Drv.RevokeDriverForRenewals(id1); err != nil {
		return r, err
	}
	liveSteps++
	upgradeOK := liveSteps == 2
	r.logf("live run, database driver upgrade:   %d Drivolution steps executed %v", liveSteps, mark(upgradeOK))

	// Scaling comparison from the executable step model.
	for _, n := range []int{2, 10, 100} {
		trad := opsmodel.CountFor(opsmodel.TraditionalUpdate(), n)
		drv := opsmodel.CountFor(opsmodel.DrivolutionUpdate(), n)
		r.logf("upgrade scaling, %3d clients: traditional %4d steps (%d disruptive) vs Drivolution %d step",
			n, trad.Steps, trad.Disruptive, drv.Steps)
	}
	r.Pass = accessOK && upgradeOK
	return r, nil
}

func mark(ok bool) string {
	if ok {
		return "[ok]"
	}
	return "[FAIL]"
}
