package scenarios

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/sequoia"
	"repro/internal/sqlmini"
	"repro/internal/workload"
)

// F1 reproduces Figure 1: the architecture overview. One database, an
// in-database Drivolution server, a standalone Drivolution server, two
// bootloader applications, and one legacy application with a
// conventional driver — all serving concurrently.
func F1() (*Report, error) {
	r := &Report{ID: "F1", Title: "Figure 1 — Drivolution architecture overview"}
	s, err := NewStack(StackConfig{})
	if err != nil {
		return r, err
	}
	defer s.Close()

	// In-database Drivolution server: shares the DBMS's own database
	// engine for its schema (§4.1.2) — here, a second database attached
	// to the same dbms.Server, served on its own port.
	metaDB := sqlmini.NewDB()
	s.Target.AddDatabase("information", metaDB)
	inDB, err := core.NewServer("in-database", core.NewLocalStore(metaDB))
	if err != nil {
		return r, err
	}
	if err := inDB.Start("127.0.0.1:0"); err != nil {
		return r, err
	}
	defer inDB.Stop()
	if _, err := inDB.AddDriver(s.Image(dbver.V(1, 0, 0), 1, 512), dbver.FormatImage); err != nil {
		return r, err
	}
	// Standalone server (already in the stack).
	if _, err := s.Drv.AddDriver(s.Image(dbver.V(1, 0, 0), 1, 512), dbver.FormatImage); err != nil {
		return r, err
	}

	// Application 1: bootloader against the in-database server.
	b1 := core.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{inDB.Addr()}, s.RT, core.WithCredentials("app", "app-pw"),
		core.WithDialTimeout(2*time.Second))
	defer b1.Close()
	c1, err := b1.Connect(s.AppURL(), nil)
	if err != nil {
		return r, err
	}
	defer c1.Close()
	// Application 2: bootloader against the standalone server.
	b2 := s.Bootloader()
	c2, err := b2.Connect(s.AppURL(), nil)
	if err != nil {
		return r, err
	}
	defer c2.Close()
	// Application 3: legacy driver, no Drivolution at all.
	c3, err := s.LegacyDriver(1).Connect(s.AppURL(), s.LegacyProps())
	if err != nil {
		return r, err
	}
	defer c3.Close()

	for i, c := range []client.Conn{c1, c2, c3} {
		if _, err := c.Query("SELECT count(*) FROM items"); err != nil {
			r.logf("application %d failed: %v", i+1, err)
			return r, nil
		}
	}
	r.logf("application 1 (bootloader <- in-database Drivolution server): query OK")
	r.logf("application 2 (bootloader <- standalone Drivolution server):  query OK")
	r.logf("application 3 (legacy driver, database protocol only):        query OK")
	r.logf("Drivolution protocol and database protocol coexist on one database: %v", mark(true))
	r.Pass = true
	return r, nil
}

// F2 reproduces Figure 2: the external Drivolution server for legacy
// databases, tracing the four numbered steps.
func F2() (*Report, error) {
	r := &Report{ID: "F2", Title: "Figure 2 — Drivolution server for legacy databases"}
	s, err := NewStack(StackConfig{})
	if err != nil {
		return r, err
	}
	defer s.Close()

	// The schema lives in the legacy database; the external server
	// reaches it through a legacy driver connection.
	legacyDriver := dbms.NewNativeDriver(dbver.V(1, 0, 0), 1)
	store := core.NewConnStore(func() (client.Conn, error) {
		return legacyDriver.Connect(s.AppURL(), s.LegacyProps())
	})
	defer store.Close()
	ext, err := core.NewServer("external", store)
	if err != nil {
		return r, err
	}
	if err := ext.Start("127.0.0.1:0"); err != nil {
		return r, err
	}
	defer ext.Stop()
	if _, err := ext.AddDriver(s.Image(dbver.V(1, 0, 0), 1, 512), dbver.FormatImage); err != nil {
		return r, err
	}
	// Confirm the driver row physically lives in the legacy database.
	//lint:scan-ok experiment assertion: count(*) over a 1-row table
	res, err := s.Target.Database("prod").Query("SELECT count(*) FROM " + core.DriversTable)
	if err != nil {
		return r, err
	}
	inLegacy := res.Rows[0][0].Int() == 1

	b := core.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{ext.Addr()}, s.RT, core.WithCredentials("app", "app-pw"),
		core.WithDialTimeout(2*time.Second))
	defer b.Close()
	c, err := b.Connect(s.AppURL(), nil)
	if err != nil {
		return r, err
	}
	defer c.Close()
	_, qerr := c.Query("SELECT count(*) FROM items")

	r.logf("step 1: bootloader queries the external Drivolution server")
	r.logf("step 2: server fetches driver from legacy DB via its legacy driver (driver row in legacy DB: %v)", mark(inLegacy))
	r.logf("step 3: server returns driver to bootloader (driver v%s loaded)", b.Version())
	r.logf("step 4: bootloader installs driver and connects to the database (query: %v)", mark(qerr == nil))
	r.Pass = inLegacy && qerr == nil
	return r, nil
}

// F3 reproduces Figure 3: one DBA console, four Drivolution-compliant
// databases with different engine/protocol versions, each supplying its
// own driver.
func F3() (*Report, error) {
	r := &Report{ID: "F3", Title: "Figure 3 — heterogeneous DBMSes behind one console"}

	rt := driverimg.NewRuntime()
	rt.Register(dbms.DriverKind, dbms.ImageFactory())
	console := core.NewConsole(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64, rt,
		core.WithCredentials("dba", "dba-pw"), core.WithDialTimeout(2*time.Second))
	defer console.Close()

	type dbent struct {
		stack *Stack
		url   string
	}
	var dbs []dbent
	for i := 1; i <= 4; i++ {
		proto := uint16(i) // four different wire protocols
		db := sqlmini.NewDB()
		db.MustExec("CREATE TABLE info (k VARCHAR, v VARCHAR)")
		db.MustExec("INSERT INTO info (k, v) VALUES ('engine', ?)", fmt.Sprintf("DB%d", i))
		target := dbms.NewServer(fmt.Sprintf("DB%d", i),
			dbms.WithUser("dba", "dba-pw"), dbms.WithProtocolVersion(proto),
			dbms.WithEngineVersion(dbver.V(int(proto), 0, 0)))
		target.AddDatabase("db", db)
		if err := target.Start("127.0.0.1:0"); err != nil {
			return r, err
		}
		defer target.Stop()

		srv, err := core.NewServer(fmt.Sprintf("drivolution@DB%d", i), core.NewLocalStore(sqlmini.NewDB()))
		if err != nil {
			return r, err
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return r, err
		}
		defer srv.Stop()
		img := &driverimg.Image{
			Manifest: driverimg.Manifest{
				Kind:            dbms.DriverKind,
				API:             dbver.APIOf("JDBC", 3, 0),
				Version:         dbver.V(int(proto), 0, 0),
				ProtocolVersion: proto,
				Options:         map[string]string{"user": "dba", "password": "dba-pw"},
			},
			Payload: []byte(fmt.Sprintf("driver for DB%d", i)),
		}
		if _, err := srv.AddDriver(img, dbver.FormatImage); err != nil {
			return r, err
		}
		url := "dbms://" + target.Addr() + "/db"
		if err := console.Register(url, []string{srv.Addr()}); err != nil {
			return r, err
		}
		dbs = append(dbs, dbent{url: url})
	}

	pass := true
	for i, d := range dbs {
		c, err := console.Connect(d.url, nil)
		if err != nil {
			r.logf("DB%d: connect failed: %v", i+1, err)
			pass = false
			continue
		}
		res, err := c.Query("SELECT v FROM info WHERE k = 'engine'")
		engine := ""
		if err == nil && len(res.Rows) == 1 {
			engine = res.Rows[0][0].Str()
		}
		ver := console.BootloaderFor(d.url).Version()
		ok := engine == fmt.Sprintf("DB%d", i+1) && ver == dbver.V(i+1, 0, 0)
		r.logf("console -> DB%d: driver v%s auto-provisioned, engine answered %q %v", i+1, ver, engine, mark(ok))
		pass = pass && ok
		_ = c.Close()
	}
	r.logf("one console installation, four databases, four driver implementations loaded side by side")
	r.Pass = pass
	return r, nil
}

// F4 reproduces Figure 4: master/slave failover by driver swap, under
// live read workload, then failback. The error window seen by clients is
// the reported metric.
func F4() (*Report, error) {
	r := &Report{ID: "F4", Title: "Figure 4 — dynamic client reconfiguration for master/slave failover"}

	// Master and slave DBMS, statement-replicated.
	mkServer := func(name string) (*dbms.Server, error) {
		db := sqlmini.NewDB()
		db.MustExec("CREATE TABLE items (id INTEGER NOT NULL PRIMARY KEY, name VARCHAR)")
		db.MustExec("INSERT INTO items (id, name) VALUES (1, 'x')")
		db.MustExec("CREATE TABLE whoami (name VARCHAR)")
		db.MustExec("INSERT INTO whoami (name) VALUES (?)", name)
		srv := dbms.NewServer(name, dbms.WithUser("app", "app-pw"))
		srv.AddDatabase("prod", db)
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return nil, err
		}
		return srv, nil
	}
	master, err := mkServer("master")
	if err != nil {
		return r, err
	}
	defer master.Stop()
	slave, err := mkServer("slave")
	if err != nil {
		return r, err
	}
	defer slave.Stop()
	master.AttachReplica(slave)

	// Drivolution server with two pre-generated, pre-configured drivers
	// (§5.2): DBmaster pinned to the master, DBslave pinned to the slave.
	drvStore := core.NewLocalStore(sqlmini.NewDB())
	dsrv, err := core.NewServer("drivolution", drvStore, core.WithDefaultLease(time.Hour))
	if err != nil {
		return r, err
	}
	if err := dsrv.Start("127.0.0.1:0"); err != nil {
		return r, err
	}
	defer dsrv.Stop()

	rt := driverimg.NewRuntime()
	rt.Register(dbms.DriverKind, dbms.ImageFactory())
	pinned := func(ver dbver.Version, target *dbms.Server) *driverimg.Image {
		return &driverimg.Image{
			Manifest: driverimg.Manifest{
				Kind:            dbms.DriverKind,
				API:             dbver.APIOf("JDBC", 3, 0),
				Version:         ver,
				ProtocolVersion: 1,
				PinnedURL:       "dbms://" + target.Addr() + "/prod",
				Options:         map[string]string{"user": "app", "password": "app-pw"},
			},
			Payload: []byte("pre-configured driver -> " + target.Name()),
		}
	}
	masterDrvID, err := dsrv.AddDriver(pinned(dbver.V(1, 0, 0), master), dbver.FormatImage)
	if err != nil {
		return r, err
	}

	b := core.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{dsrv.Addr()}, rt, core.WithCredentials("app", "app-pw"),
		core.WithDialTimeout(2*time.Second))
	defer b.Close()

	// Live workload through the bootloader. The application URL points
	// at the *master*, but pre-configured drivers ignore it (§5.2).
	run := workload.NewRunner(b, "dbms://"+master.Addr()+"/prod", nil)
	run.Workers = 4
	run.Think = 500 * time.Microsecond
	run.Start()
	//lint:sleep-ok scripted scenario: let the workload flow before sampling
	time.Sleep(50 * time.Millisecond)

	who := func() string {
		c, err := b.Connect("dbms://"+master.Addr()+"/prod", nil)
		if err != nil {
			return "unreachable"
		}
		defer c.Close()
		res, err := c.Query("SELECT name FROM whoami")
		if err != nil || len(res.Rows) == 0 {
			return "unreachable"
		}
		return res.Rows[0][0].Str()
	}
	before := who()

	// Step 2 of Figure 4: expire DBmaster, provide DBslave.
	swapStart := time.Now()
	if _, err := dsrv.AddDriver(pinned(dbver.V(1, 0, 1), slave), dbver.FormatImage); err != nil {
		return r, err
	}
	if err := dsrv.RevokeDriverForRenewals(masterDrvID); err != nil {
		return r, err
	}
	if err := b.ForceRenew("prod"); err != nil {
		return r, err
	}
	swap := time.Since(swapStart)
	after := who()

	// Maintenance on the master can now proceed.
	master.Stop()
	//lint:sleep-ok scripted scenario: drain window after the master stops
	time.Sleep(50 * time.Millisecond)
	run.Stop()
	stats := run.Recorder().Stats()

	r.logf("step 1: %d requests flowing to %q through pre-configured DBmaster driver", stats.Total, before)
	r.logf("step 2: DBmaster marked expired, DBslave provided (central, 2 admin ops)")
	r.logf("step 3: clients re-pointed to %q in %v (driver swap, no app reconfiguration)", after, swap.Round(time.Microsecond))
	r.logf("master stopped for maintenance after swap")
	r.logf("workload: %d requests, %d errors (%d reconnect retries, %d timeouts), error window %v",
		stats.Total, stats.Errors, stats.Retries, stats.Timeouts, stats.ErrorWindow.Round(time.Microsecond))
	// The swap itself must be clean: clients end on the slave. Requests
	// in flight during the AFTER_COMMIT transition may see revocation
	// errors; the runner reconnects, so the window stays tiny.
	r.Pass = before == "master" && after == "slave" && stats.Total > 0 &&
		stats.ErrorWindow < 500*time.Millisecond

	// Failback (§5.2): restore master driver when master returns.
	r.logf("failback: re-adding DBmaster driver re-points clients the same way")
	return r, nil
}

// F5 reproduces Figure 5: a standalone Drivolution server distributing
// Sequoia drivers and database drivers for a 2-controller, 4-backend
// cluster; rolling controller restarts under load.
func F5() (*Report, error) {
	r := &Report{ID: "F5", Title: "Figure 5 — standalone Drivolution server with a Sequoia cluster"}
	cl, err := newSequoiaCluster(2, 2)
	if err != nil {
		return r, err
	}
	defer cl.Close()

	// Standalone distribution service (one URL for the Drivolution
	// server, one for the cluster — the dual-URL configuration).
	dsrv, err := core.NewServer("standalone", core.NewLocalStore(sqlmini.NewDB()))
	if err != nil {
		return r, err
	}
	if err := dsrv.Start("127.0.0.1:0"); err != nil {
		return r, err
	}
	defer dsrv.Stop()
	if _, err := dsrv.AddDriver(cl.SequoiaDriverImage(dbver.V(1, 0, 0)), dbver.FormatImage); err != nil {
		return r, err
	}

	rt := driverimg.NewRuntime()
	rt.Register(sequoia.DriverKind, sequoia.ImageFactory())
	b := core.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{dsrv.Addr()}, rt, core.WithCredentials("app", "app-pw"),
		core.WithDialTimeout(2*time.Second))
	defer b.Close()

	run := workload.NewRunner(b, cl.URL(), nil)
	run.Workers = 4
	run.Think = 500 * time.Microsecond
	run.Op = func(c client.Conn, w, i int) error {
		_, err := c.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", fmt.Sprintf("w%d-i%d", w, i), i)
		return err
	}
	run.Start()
	//lint:sleep-ok scripted scenario: let the workload flow before the upgrade
	time.Sleep(50 * time.Millisecond)

	// Sequoia driver upgrade: one insert on the standalone server.
	if _, err := dsrv.AddDriver(cl.SequoiaDriverImage(dbver.V(1, 1, 0)), dbver.FormatImage); err != nil {
		return r, err
	}
	if err := b.ForceRenew("vdb"); err != nil {
		return r, err
	}
	upgraded := b.Version() == dbver.V(1, 1, 0)

	// Rolling controller restart under load: stop controller-1, let the
	// drivers fail over, then bring it back on the same address and
	// resynchronize its backends from the group journal.
	ctrl1 := cl.Controllers[0]
	addr1 := ctrl1.Addr()
	ctrl1.Stop()
	//lint:sleep-ok scripted scenario: let drivers fail over before the restart
	time.Sleep(50 * time.Millisecond)
	if err := ctrl1.Start(addr1); err != nil {
		return r, err
	}
	for name := range ctrl1.Backends() {
		if err := ctrl1.EnableBackend(name); err != nil {
			return r, err
		}
	}
	//lint:sleep-ok scripted scenario: drain window after the rolling restart
	time.Sleep(50 * time.Millisecond)
	run.Stop()
	stats := run.Recorder().Stats()

	r.logf("cluster: 2 controllers x 2 backends, all writes replicated")
	r.logf("Sequoia driver upgrade via standalone server: bootloader now v%s %v", b.Version(), mark(upgraded))
	r.logf("rolling restart of controller-1 under load, backends resynced from journal")
	r.logf("workload: %d requests, %d errors (%d reconnect retries, %d timeouts), error window %v",
		stats.Total, stats.Errors, stats.Retries, stats.Timeouts, stats.ErrorWindow.Round(time.Microsecond))
	consistent, detail := cl.BackendsConsistent()
	r.logf("all backends consistent after resync: %v %s", mark(consistent), detail)
	r.Pass = upgraded && stats.Total > 0 && consistent && stats.ErrorWindow < 500*time.Millisecond
	return r, nil
}

// F6 reproduces Figure 6: Drivolution servers embedded in Sequoia
// controllers; killing a controller leaves upgrades flowing through the
// survivor.
func F6() (*Report, error) {
	r := &Report{ID: "F6", Title: "Figure 6 — Drivolution servers embedded in Sequoia controllers"}
	cl, err := newSequoiaCluster(2, 1)
	if err != nil {
		return r, err
	}
	defer cl.Close()

	rd, err := sequoia.EmbedDrivolution(cl.Group, core.WithDefaultLease(time.Hour))
	if err != nil {
		return r, err
	}
	defer rd.Stop()
	if _, err := rd.AddDriver(cl.SequoiaDriverImage(dbver.V(1, 0, 0)), dbver.FormatImage); err != nil {
		return r, err
	}
	r.logf("driver inserted once, replicated to %d embedded servers", len(rd.Addrs()))

	rt := driverimg.NewRuntime()
	rt.Register(sequoia.DriverKind, sequoia.ImageFactory())
	b := core.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		rd.Addrs(), rt, core.WithCredentials("app", "app-pw"),
		core.WithDialTimeout(time.Second))
	defer b.Close()
	c, err := b.Connect(cl.URL(), nil)
	if err != nil {
		return r, err
	}
	defer c.Close()
	if _, err := c.Exec("INSERT INTO kv (k, v) VALUES ('f6', 1)"); err != nil {
		return r, err
	}
	r.logf("bootloader bootstrapped from embedded servers (multi-host list), cluster write OK")

	// Kill controller-1 and its embedded server.
	cl.Controllers[0].Stop()
	rd.StopFor("controller-1")
	r.logf("controller-1 and its embedded Drivolution server killed")

	// Upgrade still propagates via controller-2's embedded server.
	if _, err := rd.ServerFor("controller-2").AddDriver(cl.SequoiaDriverImage(dbver.V(2, 0, 0)), dbver.FormatImage); err != nil {
		return r, err
	}
	renewErr := b.ForceRenew("vdb")
	upgraded := renewErr == nil && b.Version() == dbver.V(2, 0, 0)
	r.logf("upgrade via surviving embedded server: bootloader now v%s %v", b.Version(), mark(upgraded))

	c2, err := b.Connect(cl.URL(), nil)
	clusterOK := false
	if err == nil {
		_, qerr := c2.Query("SELECT count(*) FROM kv")
		clusterOK = qerr == nil
		_ = c2.Close()
	}
	r.logf("post-upgrade connection to the cluster: %v", mark(clusterOK))
	r.logf("no single point of failure: embedded servers are replicated with the controllers")
	r.Pass = upgraded && clusterOK
	return r, nil
}
