package scenarios

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dbver"
	"repro/internal/workload"
)

// This file is the cluster tier of the load harness: the same
// simulated-bootloader fleet the single-server scenarios drive, pointed
// at a multi-member control plane (internal/cluster), with one member
// killed mid-run. It is the paper's Figure 4 failover experiment lifted
// from the database tier to the Drivolution servers themselves, at
// fleet scale. The tier is opt-in (`make loadtest CLUSTER=3`) so the
// tier-1 critical path stays single-server.

// loadCluster runs the steady-state fleet against a cfg.Cluster-member
// cluster and kills one member halfway through the measured phase.
// Invariants pinned, per the clustering design:
//
//   - routing works: clients follow REDIRECT answers to shard owners
//     (the run must observe redirects — every client starts on an
//     arbitrary member);
//   - the kill costs no lease: survivors renew the dead member's
//     leases from the replicated store under the original identity, so
//     the fleet finishes fully live with zero rebootstraps;
//   - availability loss is bounded by one renewal round: errors stop
//     once every client whose home died has failed over, not at the
//     end of the run.
func loadCluster(cfg LoadConfig) (*LoadResult, error) {
	members := cfg.Cluster
	if members <= 0 {
		members = 3
	}
	if members < 2 {
		return nil, fmt.Errorf("cluster scenario needs >= 2 members to survive a kill, got %d", members)
	}

	// Membership timings scaled for the scenario: takeover within
	// 400ms of the kill, far inside a lease term, so failover cost is
	// set by client retry schedules rather than failure detection.
	hb := 50 * time.Millisecond
	cf, err := cluster.NewFleet(cluster.FleetConfig{
		Members:           members,
		DefaultLease:      cfg.Lease,
		HeartbeatInterval: hb,
		FenceAfter:        4 * hb,
		FailAfter:         8 * hb,
		DialTimeout:       time.Second,
		// No reaper, like the single-server tiers: expiry stays lazy,
		// so a renewal the failover delayed past expiry re-extends the
		// same lease row instead of rebootstrapping. The cluster chaos
		// test covers the aggressive-reap regime.
		SweepInterval: cfg.Lease / 4,
	})
	if err != nil {
		return nil, err
	}
	defer cf.Stop()
	// One AddDriver on any member replicates the catalog everywhere.
	if _, err := cf.Servers[0].AddDriver(loadImage(dbver.V(1, 0, 0), cfg.Payload), dbver.FormatImage); err != nil {
		return nil, err
	}
	stmts0 := clusterStmts(cf)

	f, err := workload.NewFleet(workload.FleetConfig{
		Addrs:          cf.Addrs(),
		Database:       "prod",
		User:           "app",
		Password:       "app-pw",
		Population:     cfg.Population,
		Workers:        cfg.Workers,
		Seed:           cfg.Seed,
		RampUp:         rampFor(cfg),
		RenewAhead:     0.8,
		RetryInterval:  cfg.Lease / 4,
		OpTimeout:      5 * time.Second,
		FetchOnUpgrade: true,
	})
	if err != nil {
		return nil, err
	}
	f.Start()
	defer f.Stop()
	if err := settle(f, cfg); err != nil {
		return nil, err
	}

	//lint:sleep-ok scripted failover timeline: steady multi-member traffic before the kill
	time.Sleep(cfg.Duration / 2)
	cf.Kill(members - 1)
	// Ride out the failover under load: every client renews at least
	// once after the kill (renewals fire at 0.8 of a term), so by half
	// a duration plus one term the whole population has either failed
	// over or lost its lease — exactly what the report distinguishes.
	//lint:sleep-ok scripted failover timeline: survivors absorb the dead member's shards under load
	time.Sleep(cfg.Duration/2 + cfg.Lease)

	f.Stop()
	rep := f.Report()
	res := result("cluster", cfg, rep, int64(clusterStmts(cf)-stmts0))
	if rep.Redirects == 0 {
		return res, fmt.Errorf("no redirects across %d members — shard routing was not exercised", members)
	}
	if rep.Live != cfg.Population {
		return res, fmt.Errorf("cluster fleet: %d/%d clients hold a lease after the kill", rep.Live, cfg.Population)
	}
	if rep.Rebootstraps != 0 {
		return res, fmt.Errorf("%d clients lost their lease across the member kill", rep.Rebootstraps)
	}
	// Errors are expected (clients whose home died fail mid-exchange)
	// but must stop within one renewal round of the kill, not track
	// run length.
	if bound := 2 * cfg.Lease; rep.Stats.ErrorWindow > bound {
		return res, fmt.Errorf("failover cost not bounded: error window %v > %v (two lease terms)",
			rep.Stats.ErrorWindow, bound)
	}
	return res, nil
}

// clusterStmts sums the effective mutating statements applied to one
// member's store. Statement replication applies every write on every
// member, so a single member observes the cluster-wide write stream;
// sqlmini table versions advance once per effective mutation (a
// renewal's guarded UPDATE always changes expires_at, so renewals are
// never no-ops).
func clusterStmts(cf *cluster.Fleet) uint64 {
	return cf.DBs[0].TableVersions(core.DriversTable, core.PermissionTable, core.LeasesTable)
}
