// Package dbms implements the simulated database management system the
// reproduction runs against: a TCP server speaking a versioned binary
// protocol, executing SQL against sqlmini databases, with per-user
// authentication, transactions, statement-based master/slave
// replication, and an information schema. It also ships the "legacy"
// native driver for that protocol — the conventional driver whose
// lifecycle the paper is reforming.
//
// The protocol version carried in the client hello is the compatibility
// axis the paper cares about: a driver built for protocol N fails at
// connect time against a server speaking protocol M≠N, reproducing the
// paper's step-5 incompatibility ("Step 5 is where the compatibility
// between the database and the driver is checked").
package dbms

import (
	"fmt"

	"repro/internal/sqlmini"
	"repro/internal/wire"
)

// Frame types of the DBMS protocol.
const (
	msgHello   uint16 = 0x0101 // client → server: version, db, credentials
	msgHelloOK uint16 = 0x0102 // server → client: accepted
	msgExec    uint16 = 0x0103 // client → server: statement + args
	msgResult  uint16 = 0x0104 // server → client: result set
	msgPing    uint16 = 0x0105
	msgPong    uint16 = 0x0106
	// msgExecBatch ships N statements in one frame; msgBatchResult
	// answers with N result sets, or the results so far plus the failing
	// statement's index and error. The atomic flag makes the server
	// wrap the batch in BEGIN/COMMIT and roll back on mid-batch failure.
	msgExecBatch   uint16 = 0x0107
	msgBatchResult uint16 = 0x0108
	msgError       uint16 = 0x01FF
)

// Error codes carried by msgError.
const (
	codeProtocolMismatch uint16 = iota + 1
	codeAuthFailed
	codeNoDatabase
	codeQueryError
	codeReadOnly
	codeShutdown
)

// serverError is a protocol-level error with a code.
type serverError struct {
	code uint16
	msg  string
}

func (e *serverError) Error() string { return fmt.Sprintf("dbms: [%d] %s", e.code, e.msg) }

type helloMsg struct {
	ProtocolVersion uint16
	Database        string
	User            string
	Password        string
	ClientInfo      string // driver name/version, for diagnostics
}

func (h helloMsg) encode() []byte {
	e := wire.NewEncoder(128)
	e.Uint16(h.ProtocolVersion)
	e.String(h.Database)
	e.String(h.User)
	e.String(h.Password)
	e.String(h.ClientInfo)
	return e.Bytes()
}

func decodeHello(b []byte) (helloMsg, error) {
	d := wire.NewDecoder(b)
	h := helloMsg{
		ProtocolVersion: d.Uint16(),
		Database:        d.String(),
		User:            d.String(),
		Password:        d.String(),
		ClientInfo:      d.String(),
	}
	return h, d.Err()
}

type helloOKMsg struct {
	ServerName      string
	ServerVersion   string
	ProtocolVersion uint16
	SessionID       uint64
}

func (h helloOKMsg) encode() []byte {
	e := wire.NewEncoder(64)
	e.String(h.ServerName)
	e.String(h.ServerVersion)
	e.Uint16(h.ProtocolVersion)
	e.Uint64(h.SessionID)
	return e.Bytes()
}

func decodeHelloOK(b []byte) (helloOKMsg, error) {
	d := wire.NewDecoder(b)
	h := helloOKMsg{
		ServerName:      d.String(),
		ServerVersion:   d.String(),
		ProtocolVersion: d.Uint16(),
		SessionID:       d.Uint64(),
	}
	return h, d.Err()
}

type execMsg struct {
	SQL        string
	Named      map[string]sqlmini.Value
	Positional []sqlmini.Value
}

func (m execMsg) encode() []byte {
	e := wire.NewEncoder(256)
	e.String(m.SQL)
	e.Uint32(uint32(len(m.Named)))
	for k, v := range m.Named {
		e.String(k)
		sqlmini.EncodeValue(e, v)
	}
	e.Uint32(uint32(len(m.Positional)))
	for _, v := range m.Positional {
		sqlmini.EncodeValue(e, v)
	}
	return e.Bytes()
}

func decodeExec(b []byte) (execMsg, error) {
	d := wire.NewDecoder(b)
	m := execMsg{SQL: d.String()}
	nNamed := d.Uint32()
	if err := d.Err(); err != nil {
		return m, err
	}
	if nNamed > 0 {
		m.Named = make(map[string]sqlmini.Value, nNamed)
		for i := uint32(0); i < nNamed; i++ {
			k := d.String()
			v, err := sqlmini.DecodeValue(d)
			if err != nil {
				return m, err
			}
			m.Named[k] = v
		}
	}
	nPos := d.Uint32()
	if err := d.Err(); err != nil {
		return m, err
	}
	for i := uint32(0); i < nPos; i++ {
		v, err := sqlmini.DecodeValue(d)
		if err != nil {
			return m, err
		}
		m.Positional = append(m.Positional, v)
	}
	return m, d.Err()
}

func encodeResult(r *sqlmini.Result) []byte {
	e := wire.NewEncoder(256)
	e.StringSlice(r.Cols)
	e.Uint32(uint32(len(r.Rows)))
	for _, row := range r.Rows {
		e.Uint32(uint32(len(row)))
		for _, v := range row {
			sqlmini.EncodeValue(e, v)
		}
	}
	e.Int64(int64(r.Affected))
	return e.Bytes()
}

func decodeResult(b []byte) (*sqlmini.Result, error) {
	d := wire.NewDecoder(b)
	r := &sqlmini.Result{Cols: d.StringSlice()}
	nRows := d.Uint32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nRows; i++ {
		nCols := d.Uint32()
		if err := d.Err(); err != nil {
			return nil, err
		}
		row := make([]sqlmini.Value, 0, nCols)
		for j := uint32(0); j < nCols; j++ {
			v, err := sqlmini.DecodeValue(d)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		r.Rows = append(r.Rows, row)
	}
	r.Affected = int(d.Int64())
	return r, d.Err()
}

// batchMsg is msgExecBatch: an ordered statement list plus the atomic
// flag. Statements nest in the execMsg encoding.
type batchMsg struct {
	Atomic bool
	Stmts  []execMsg
}

func (m batchMsg) encode() []byte {
	e := wire.NewEncoder(64 * (len(m.Stmts) + 1))
	e.Bool(m.Atomic)
	e.Uint32(uint32(len(m.Stmts)))
	for _, st := range m.Stmts {
		e.Bytes32(st.encode())
	}
	return e.Bytes()
}

func decodeBatch(b []byte) (batchMsg, error) {
	d := wire.NewDecoder(b)
	m := batchMsg{Atomic: d.Bool()}
	n := d.Uint32()
	if err := d.Err(); err != nil {
		return m, err
	}
	for i := uint32(0); i < n; i++ {
		st, err := decodeExec(d.Bytes32())
		if err != nil {
			return m, err
		}
		if err := d.Err(); err != nil {
			return m, err
		}
		m.Stmts = append(m.Stmts, st)
	}
	return m, d.Err()
}

// batchResultMsg is msgBatchResult. ErrIndex is the 0-based position
// of the failing statement, -1 on full success; Results holds one
// entry per statement executed before the failure (all of them on
// success).
type batchResultMsg struct {
	Results  []*sqlmini.Result
	ErrIndex int32
	ErrCode  uint16
	ErrMsg   string
}

func (m batchResultMsg) encode() []byte {
	e := wire.NewEncoder(256)
	e.Uint32(uint32(len(m.Results)))
	for _, r := range m.Results {
		e.Bytes32(encodeResult(r))
	}
	e.Int32(m.ErrIndex)
	e.Uint16(m.ErrCode)
	e.String(m.ErrMsg)
	return e.Bytes()
}

func decodeBatchResult(b []byte) (batchResultMsg, error) {
	d := wire.NewDecoder(b)
	var m batchResultMsg
	n := d.Uint32()
	if err := d.Err(); err != nil {
		return m, err
	}
	for i := uint32(0); i < n; i++ {
		r, err := decodeResult(d.Bytes32())
		if err != nil {
			return m, err
		}
		if err := d.Err(); err != nil {
			return m, err
		}
		m.Results = append(m.Results, r)
	}
	m.ErrIndex = d.Int32()
	m.ErrCode = d.Uint16()
	m.ErrMsg = d.String()
	return m, d.Err()
}

func encodeError(code uint16, msg string) []byte {
	e := wire.NewEncoder(len(msg) + 8)
	e.Uint16(code)
	e.String(msg)
	return e.Bytes()
}

func decodeError(b []byte) (uint16, string, error) {
	d := wire.NewDecoder(b)
	code := d.Uint16()
	msg := d.String()
	return code, msg, d.Err()
}
