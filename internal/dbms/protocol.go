// Package dbms implements the simulated database management system the
// reproduction runs against: a TCP server speaking a versioned binary
// protocol, executing SQL against sqlmini databases, with per-user
// authentication, transactions, statement-based master/slave
// replication, and an information schema. It also ships the "legacy"
// native driver for that protocol — the conventional driver whose
// lifecycle the paper is reforming.
//
// The protocol version carried in the client hello is the compatibility
// axis the paper cares about: a driver built for protocol N fails at
// connect time against a server speaking protocol M≠N, reproducing the
// paper's step-5 incompatibility ("Step 5 is where the compatibility
// between the database and the driver is checked").
//
// Protocol v2 turns that single version into a negotiated session
// contract: hello/helloOK carry a version range plus a capability
// bitmask, and capability-gated frames give sessions server-side
// prepared-statement handles (msgPrepare/msgExecStmt/msgCloseStmt) and
// one-round-trip generation probes over the engine's per-table mutation
// counters (msgTableVersions). Peers that pin a single version — every
// legacy driver build, and servers configured with WithProtocolVersion —
// negotiate exactly as before, keeping the step-5 failure mode intact.
package dbms

import (
	"fmt"
	"sort"

	"repro/internal/sqlmini"
	"repro/internal/wire"
)

// Frame types of the DBMS protocol.
const (
	msgHello   uint16 = 0x0101 // client → server: version, db, credentials
	msgHelloOK uint16 = 0x0102 // server → client: accepted
	msgExec    uint16 = 0x0103 // client → server: statement + args
	msgResult  uint16 = 0x0104 // server → client: result set
	msgPing    uint16 = 0x0105
	msgPong    uint16 = 0x0106
	// msgExecBatch ships N statements in one frame; msgBatchResult
	// answers with N result sets, or the results so far plus the failing
	// statement's index and error. The atomic flag makes the server
	// wrap the batch in BEGIN/COMMIT and roll back on mid-batch failure.
	msgExecBatch   uint16 = 0x0107
	msgBatchResult uint16 = 0x0108
	// Protocol v2 session frames (capability-gated; see the Cap*
	// bitmask). msgPrepare registers a statement server-side and
	// msgPrepareOK returns its handle; msgExecStmt executes a handle
	// with fresh arguments (answered by msgResult/msgError exactly like
	// msgExec); msgCloseStmt releases a handle (msgCloseStmtOK).
	// msgTableVersions probes the engine's per-table mutation counters
	// in one round trip (msgTableVersionsOK) — the wire form of the
	// generation counters backing metadata caches.
	msgPrepare         uint16 = 0x0109
	msgPrepareOK       uint16 = 0x010A
	msgExecStmt        uint16 = 0x010B
	msgCloseStmt       uint16 = 0x010C
	msgCloseStmtOK     uint16 = 0x010D
	msgTableVersions   uint16 = 0x010E
	msgTableVersionsOK uint16 = 0x010F
	msgError           uint16 = 0x01FF
)

// Wire-protocol versions. V1 is the legacy request/response protocol
// (exec, ping, batch). V2 adds capability negotiation to the handshake
// plus the session frames above. A client may offer a version RANGE in
// its hello ([MinProtocolVersion, ProtocolVersion]); servers negotiate
// the highest version both sides share and answer with the session's
// capability mask. Single-version peers (legacy drivers pin min == max,
// WithProtocolVersion pins the server) keep the paper's step-5 failure
// mode: disjoint ranges are rejected at connect time.
const (
	ProtocolV1 uint16 = 1
	ProtocolV2 uint16 = 2
)

// Session capability bits, negotiated in the v2 handshake. A
// capability is live on a session only when BOTH sides advertised it
// and the negotiated version carries it; frames of absent capabilities
// are rejected with codeNotSupported.
const (
	// CapPreparedStatements: msgPrepare/msgExecStmt/msgCloseStmt.
	CapPreparedStatements uint32 = 1 << 0
	// CapTableVersions: msgTableVersions generation probes.
	CapTableVersions uint32 = 1 << 1
	// CapAtomicBatch: msgExecBatch with the atomic flag. (Batch frames
	// predate negotiation and still work on v1 sessions; the bit lets
	// v2 peers detect the capability without trying.)
	CapAtomicBatch uint32 = 1 << 2
)

// capsForVersion reports the capabilities this implementation offers at
// a negotiated protocol version.
func capsForVersion(v uint16) uint32 {
	if v >= ProtocolV2 {
		return CapPreparedStatements | CapTableVersions | CapAtomicBatch
	}
	return 0
}

// Error codes carried by msgError.
const (
	codeProtocolMismatch uint16 = iota + 1
	codeAuthFailed
	codeNoDatabase
	codeQueryError
	codeReadOnly
	codeShutdown
	// codeBadHandle: msgExecStmt/msgCloseStmt named a prepared-statement
	// handle this session does not hold.
	codeBadHandle
	// codeNotSupported: a frame whose capability the session did not
	// negotiate.
	codeNotSupported
)

// serverError is a protocol-level error with a code.
type serverError struct {
	code uint16
	msg  string
}

func (e *serverError) Error() string { return fmt.Sprintf("dbms: [%d] %s", e.code, e.msg) }

// helloMsg opens a session. ProtocolVersion is the highest version the
// client speaks; the v2 extension appends the lowest acceptable version
// and the client's capability mask. A legacy (5-field) hello decodes
// with MinProtocolVersion = ProtocolVersion and no capabilities, so v1
// frames negotiate exactly as before.
type helloMsg struct {
	ProtocolVersion uint16
	Database        string
	User            string
	Password        string
	ClientInfo      string // driver name/version, for diagnostics

	// v2 extension (trailing; absent on legacy frames).
	MinProtocolVersion uint16
	Capabilities       uint32
}

func (h helloMsg) encode() []byte {
	e := wire.NewEncoder(128)
	e.Uint16(h.ProtocolVersion)
	e.String(h.Database)
	e.String(h.User)
	e.String(h.Password)
	e.String(h.ClientInfo)
	e.Uint16(h.MinProtocolVersion)
	e.Uint32(h.Capabilities)
	return e.Bytes()
}

func decodeHello(b []byte) (helloMsg, error) {
	d := wire.NewDecoder(b)
	h := helloMsg{
		ProtocolVersion: d.Uint16(),
		Database:        d.String(),
		User:            d.String(),
		Password:        d.String(),
		ClientInfo:      d.String(),
	}
	if d.Remaining() > 0 {
		h.MinProtocolVersion = d.Uint16()
		h.Capabilities = d.Uint32()
	} else {
		h.MinProtocolVersion = h.ProtocolVersion // legacy: exact pin
	}
	return h, d.Err()
}

// helloOKMsg accepts a session. ProtocolVersion is the NEGOTIATED
// version; the v2 extension appends the session's capability mask
// (ignored by legacy decoders, zero on v1 sessions).
type helloOKMsg struct {
	ServerName      string
	ServerVersion   string
	ProtocolVersion uint16
	SessionID       uint64

	// v2 extension (trailing; absent on legacy frames).
	Capabilities uint32
}

func (h helloOKMsg) encode() []byte {
	e := wire.NewEncoder(64)
	e.String(h.ServerName)
	e.String(h.ServerVersion)
	e.Uint16(h.ProtocolVersion)
	e.Uint64(h.SessionID)
	e.Uint32(h.Capabilities)
	return e.Bytes()
}

func decodeHelloOK(b []byte) (helloOKMsg, error) {
	d := wire.NewDecoder(b)
	h := helloOKMsg{
		ServerName:      d.String(),
		ServerVersion:   d.String(),
		ProtocolVersion: d.Uint16(),
		SessionID:       d.Uint64(),
	}
	if d.Remaining() > 0 {
		h.Capabilities = d.Uint32()
	}
	return h, d.Err()
}

type execMsg struct {
	SQL        string
	Named      map[string]sqlmini.Value
	Positional []sqlmini.Value
}

// encodeArgs appends the shared argument block (named map, then
// positional list) used by msgExec and msgExecStmt. Named keys are
// sorted so every message has exactly one wire form (golden-frame
// fixtures rely on this; maps are tiny, so the sort is noise).
func encodeArgs(e *wire.Encoder, named map[string]sqlmini.Value, positional []sqlmini.Value) {
	e.Uint32(uint32(len(named)))
	if len(named) > 0 {
		keys := make([]string, 0, len(named))
		for k := range named {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e.String(k)
			sqlmini.EncodeValue(e, named[k])
		}
	}
	e.Uint32(uint32(len(positional)))
	for _, v := range positional {
		sqlmini.EncodeValue(e, v)
	}
}

// decodeArgs consumes the shared argument block. Counts are validated
// against the remaining payload BEFORE sizing any allocation (each
// named entry needs at least its 4-byte key length plus a value type
// byte; each positional value at least a type byte), so a malformed
// count in a tiny frame errors instead of OOMing the process.
func decodeArgs(d *wire.Decoder) (named map[string]sqlmini.Value, positional []sqlmini.Value, err error) {
	nNamed := d.Uint32()
	if err := d.Err(); err != nil {
		return nil, nil, err
	}
	if uint64(nNamed)*5 > uint64(d.Remaining()) {
		return nil, nil, fmt.Errorf("%w: named-arg count %d exceeds payload", wire.ErrShortBuffer, nNamed)
	}
	if nNamed > 0 {
		named = make(map[string]sqlmini.Value, nNamed)
		for i := uint32(0); i < nNamed; i++ {
			k := d.String()
			v, err := sqlmini.DecodeValue(d)
			if err != nil {
				return nil, nil, err
			}
			named[k] = v
		}
	}
	nPos := d.Uint32()
	if err := d.Err(); err != nil {
		return nil, nil, err
	}
	if uint64(nPos) > uint64(d.Remaining()) {
		return nil, nil, fmt.Errorf("%w: positional-arg count %d exceeds payload", wire.ErrShortBuffer, nPos)
	}
	for i := uint32(0); i < nPos; i++ {
		v, err := sqlmini.DecodeValue(d)
		if err != nil {
			return nil, nil, err
		}
		positional = append(positional, v)
	}
	return named, positional, d.Err()
}

func (m execMsg) encode() []byte {
	e := wire.NewEncoder(256)
	e.String(m.SQL)
	encodeArgs(e, m.Named, m.Positional)
	return e.Bytes()
}

func decodeExec(b []byte) (execMsg, error) {
	d := wire.NewDecoder(b)
	m := execMsg{SQL: d.String()}
	var err error
	m.Named, m.Positional, err = decodeArgs(d)
	if err != nil {
		return m, err
	}
	return m, d.Err()
}

func encodeResult(r *sqlmini.Result) []byte {
	e := wire.NewEncoder(256)
	e.StringSlice(r.Cols)
	e.Uint32(uint32(len(r.Rows)))
	for _, row := range r.Rows {
		e.Uint32(uint32(len(row)))
		for _, v := range row {
			sqlmini.EncodeValue(e, v)
		}
	}
	e.Int64(int64(r.Affected))
	return e.Bytes()
}

func decodeResult(b []byte) (*sqlmini.Result, error) {
	d := wire.NewDecoder(b)
	r := &sqlmini.Result{Cols: d.StringSlice()}
	nRows := d.Uint32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nRows; i++ {
		nCols := d.Uint32()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if uint64(nCols) > uint64(d.Remaining()) { // each value ≥ 1 byte
			return nil, fmt.Errorf("%w: column count %d exceeds payload", wire.ErrShortBuffer, nCols)
		}
		row := make([]sqlmini.Value, 0, nCols)
		for j := uint32(0); j < nCols; j++ {
			v, err := sqlmini.DecodeValue(d)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		r.Rows = append(r.Rows, row)
	}
	r.Affected = int(d.Int64())
	return r, d.Err()
}

// batchMsg is msgExecBatch: an ordered statement list plus the atomic
// flag. Statements nest in the execMsg encoding.
type batchMsg struct {
	Atomic bool
	Stmts  []execMsg
}

func (m batchMsg) encode() []byte {
	e := wire.NewEncoder(64 * (len(m.Stmts) + 1))
	e.Bool(m.Atomic)
	e.Uint32(uint32(len(m.Stmts)))
	for _, st := range m.Stmts {
		e.Bytes32(st.encode())
	}
	return e.Bytes()
}

func decodeBatch(b []byte) (batchMsg, error) {
	d := wire.NewDecoder(b)
	m := batchMsg{Atomic: d.Bool()}
	n := d.Uint32()
	if err := d.Err(); err != nil {
		return m, err
	}
	for i := uint32(0); i < n; i++ {
		st, err := decodeExec(d.Bytes32())
		if err != nil {
			return m, err
		}
		if err := d.Err(); err != nil {
			return m, err
		}
		m.Stmts = append(m.Stmts, st)
	}
	return m, d.Err()
}

// batchResultMsg is msgBatchResult. ErrIndex is the 0-based position
// of the failing statement, -1 on full success; Results holds one
// entry per statement executed before the failure (all of them on
// success).
type batchResultMsg struct {
	Results  []*sqlmini.Result
	ErrIndex int32
	ErrCode  uint16
	ErrMsg   string
}

func (m batchResultMsg) encode() []byte {
	e := wire.NewEncoder(256)
	e.Uint32(uint32(len(m.Results)))
	for _, r := range m.Results {
		e.Bytes32(encodeResult(r))
	}
	e.Int32(m.ErrIndex)
	e.Uint16(m.ErrCode)
	e.String(m.ErrMsg)
	return e.Bytes()
}

func decodeBatchResult(b []byte) (batchResultMsg, error) {
	d := wire.NewDecoder(b)
	var m batchResultMsg
	n := d.Uint32()
	if err := d.Err(); err != nil {
		return m, err
	}
	for i := uint32(0); i < n; i++ {
		r, err := decodeResult(d.Bytes32())
		if err != nil {
			return m, err
		}
		if err := d.Err(); err != nil {
			return m, err
		}
		m.Results = append(m.Results, r)
	}
	m.ErrIndex = d.Int32()
	m.ErrCode = d.Uint16()
	m.ErrMsg = d.String()
	return m, d.Err()
}

func encodeError(code uint16, msg string) []byte {
	e := wire.NewEncoder(len(msg) + 8)
	e.Uint16(code)
	e.String(msg)
	return e.Bytes()
}

func decodeError(b []byte) (uint16, string, error) {
	d := wire.NewDecoder(b)
	code := d.Uint16()
	msg := d.String()
	return code, msg, d.Err()
}

// prepareMsg is msgPrepare: register one statement server-side.
type prepareMsg struct {
	SQL string
}

func (m prepareMsg) encode() []byte {
	e := wire.NewEncoder(len(m.SQL) + 8)
	e.String(m.SQL)
	return e.Bytes()
}

func decodePrepare(b []byte) (prepareMsg, error) {
	d := wire.NewDecoder(b)
	m := prepareMsg{SQL: d.String()}
	return m, d.Err()
}

// prepareOKMsg is msgPrepareOK: the session-scoped handle id plus the
// server's mutation classification (diagnostic; the read-only gate is
// enforced server-side at execution time).
type prepareOKMsg struct {
	Handle   uint64
	Mutating bool
}

func (m prepareOKMsg) encode() []byte {
	e := wire.NewEncoder(16)
	e.Uint64(m.Handle)
	e.Bool(m.Mutating)
	return e.Bytes()
}

func decodePrepareOK(b []byte) (prepareOKMsg, error) {
	d := wire.NewDecoder(b)
	m := prepareOKMsg{Handle: d.Uint64(), Mutating: d.Bool()}
	return m, d.Err()
}

// execStmtMsg is msgExecStmt: a prepared handle plus this call's
// arguments, in the same argument encoding as msgExec. Answered by
// msgResult or msgError, exactly like msgExec.
type execStmtMsg struct {
	Handle     uint64
	Named      map[string]sqlmini.Value
	Positional []sqlmini.Value
}

func (m execStmtMsg) encode() []byte {
	e := wire.NewEncoder(128)
	e.Uint64(m.Handle)
	encodeArgs(e, m.Named, m.Positional)
	return e.Bytes()
}

func decodeExecStmt(b []byte) (execStmtMsg, error) {
	d := wire.NewDecoder(b)
	m := execStmtMsg{Handle: d.Uint64()}
	var err error
	m.Named, m.Positional, err = decodeArgs(d)
	if err != nil {
		return m, err
	}
	return m, d.Err()
}

// closeStmtMsg is msgCloseStmt: release one handle (msgCloseStmtOK
// acknowledges; closing an unknown handle is not an error, so client
// caches may close fire-and-forget on eviction races).
type closeStmtMsg struct {
	Handle uint64
}

func (m closeStmtMsg) encode() []byte {
	e := wire.NewEncoder(8)
	e.Uint64(m.Handle)
	return e.Bytes()
}

func decodeCloseStmt(b []byte) (closeStmtMsg, error) {
	d := wire.NewDecoder(b)
	m := closeStmtMsg{Handle: d.Uint64()}
	return m, d.Err()
}

// tableVersionsMsg is msgTableVersions: probe the per-table mutation
// counters of the session's database, one round trip for any number of
// tables.
type tableVersionsMsg struct {
	Names []string
}

func (m tableVersionsMsg) encode() []byte {
	e := wire.NewEncoder(16 * (len(m.Names) + 1))
	e.StringSlice(m.Names)
	return e.Bytes()
}

func decodeTableVersions(b []byte) (tableVersionsMsg, error) {
	d := wire.NewDecoder(b)
	m := tableVersionsMsg{Names: d.StringSlice()}
	return m, d.Err()
}

// tableVersionsOKMsg is msgTableVersionsOK: counters parallel to the
// probed names (0 for tables the database does not hold).
type tableVersionsOKMsg struct {
	Versions []uint64
}

func (m tableVersionsOKMsg) encode() []byte {
	e := wire.NewEncoder(8 * (len(m.Versions) + 1))
	e.Uint32(uint32(len(m.Versions)))
	for _, v := range m.Versions {
		e.Uint64(v)
	}
	return e.Bytes()
}

func decodeTableVersionsOK(b []byte) (tableVersionsOKMsg, error) {
	d := wire.NewDecoder(b)
	n := d.Uint32()
	if err := d.Err(); err != nil {
		return tableVersionsOKMsg{}, err
	}
	if uint64(n)*8 > uint64(d.Remaining()) {
		return tableVersionsOKMsg{}, fmt.Errorf("%w: version count %d exceeds payload", wire.ErrShortBuffer, n)
	}
	m := tableVersionsOKMsg{Versions: make([]uint64, 0, n)}
	for i := uint32(0); i < n; i++ {
		m.Versions = append(m.Versions, d.Uint64())
	}
	return m, d.Err()
}
