package dbms

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/dbver"
	"repro/internal/sqlmini"
	"repro/internal/wire"
)

// Tests for the v2 session protocol: capability negotiation, remote
// prepared statements, and table-version probes.

// dialV2 connects with a driver that speaks the full v2 range.
func dialV2(t *testing.T, s *Server) client.Conn {
	t.Helper()
	d := NewNativeDriver(dbver.V(2, 0, 0), ProtocolV2, WithProtocolFloor(ProtocolV1))
	c, err := d.Connect("dbms://"+s.Addr()+"/app", client.Props{"user": "alice", "password": "secret"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestNegotiationMatrix covers the mixed-version handshake: ranged and
// pinned clients against ranged and pinned servers.
func TestNegotiationMatrix(t *testing.T) {
	rangedSrv := startServer(t) // default: [ProtocolV1, ProtocolV2]
	v1Srv := startServer(t, WithProtocolVersion(1))
	v2Srv := startServer(t, WithProtocolVersion(2))

	cases := []struct {
		name      string
		driver    *NativeDriver
		server    *Server
		wantProto uint16
		wantCaps  bool
		wantFail  bool
	}{
		{"ranged vs ranged", NewNativeDriver(dbver.V(2, 0, 0), 2, WithProtocolFloor(1)), rangedSrv, 2, true, false},
		{"ranged v2 client vs pinned v1 server", NewNativeDriver(dbver.V(2, 0, 0), 2, WithProtocolFloor(1)), v1Srv, 1, false, false},
		{"pinned v1 client vs ranged server", NewNativeDriver(dbver.V(1, 0, 0), 1), rangedSrv, 1, false, false},
		{"pinned v2 client vs ranged server", NewNativeDriver(dbver.V(2, 0, 0), 2), rangedSrv, 2, true, false},
		{"pinned v1 client vs pinned v2 server", NewNativeDriver(dbver.V(1, 0, 0), 1), v2Srv, 0, false, true},
		{"pinned v2 client vs pinned v1 server", NewNativeDriver(dbver.V(2, 0, 0), 2), v1Srv, 0, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := tc.driver.Connect("dbms://"+tc.server.Addr()+"/app",
				client.Props{"user": "alice", "password": "secret"})
			if tc.wantFail {
				if !errors.Is(err, client.ErrProtocolMismatch) {
					t.Fatalf("err = %v, want ErrProtocolMismatch", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			nc := c.(*nativeConn)
			if nc.NegotiatedProtocol() != tc.wantProto {
				t.Fatalf("negotiated %d, want %d", nc.NegotiatedProtocol(), tc.wantProto)
			}
			fc := c.(client.FeatureConn)
			if fc.Supports(client.FeaturePreparedStatements) != tc.wantCaps ||
				fc.Supports(client.FeatureTableVersions) != tc.wantCaps {
				t.Fatalf("capabilities = %v, want %v", !tc.wantCaps, tc.wantCaps)
			}
			// The session must actually work at the negotiated version.
			if _, err := c.Query("SELECT count(*) FROM accounts"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestNegotiatedDownDisablesCapabilities: a v2 driver downgraded to a
// v1 session gets ErrNotSupported from capability methods without any
// wire traffic, so pooled stores can fall back cheaply.
func TestNegotiatedDownDisablesCapabilities(t *testing.T) {
	s := startServer(t, WithProtocolVersion(1))
	d := NewNativeDriver(dbver.V(2, 0, 0), 2, WithProtocolFloor(1))
	c, err := d.Connect("dbms://"+s.Addr()+"/app", client.Props{"user": "alice", "password": "secret"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	queriesBefore := s.QueriesServed()
	if _, err := c.(client.StmtConn).Prepare("SELECT 1"); !errors.Is(err, client.ErrNotSupported) {
		t.Fatalf("Prepare on v1 session: err = %v, want ErrNotSupported", err)
	}
	if _, err := c.(client.TableVersionConn).TableVersions("accounts"); !errors.Is(err, client.ErrNotSupported) {
		t.Fatalf("TableVersions on v1 session: err = %v, want ErrNotSupported", err)
	}
	if got := s.QueriesServed() - queriesBefore; got != 0 {
		t.Fatalf("capability refusal cost %d server statements, want 0", got)
	}
}

// TestPreparedEquivalence: a remote prepared handle returns exactly
// what the same SQL returns ad hoc — results and errors — while the
// server parses once, not per call.
func TestPreparedEquivalence(t *testing.T) {
	s := startServer(t)
	c := dialV2(t, s)
	sc := c.(client.StmtConn)

	st, err := sc.Prepare("SELECT balance FROM accounts WHERE id = $id")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{1, 2, 1} {
		pr, err := st.Exec(sqlmini.Args{"id": id})
		if err != nil {
			t.Fatal(err)
		}
		ar, err := c.Query("SELECT balance FROM accounts WHERE id = $id", sqlmini.Args{"id": id})
		if err != nil {
			t.Fatal(err)
		}
		if pr.Rows[0][0].Int() != ar.Rows[0][0].Int() {
			t.Fatalf("id %d: prepared %v != ad hoc %v", id, pr.Rows[0][0], ar.Rows[0][0])
		}
	}
	if got := s.PreparesServed(); got != 1 {
		t.Fatalf("PreparesServed = %d, want 1", got)
	}
	if got := s.StmtExecsServed(); got != 3 {
		t.Fatalf("StmtExecsServed = %d, want 3", got)
	}

	// Errors surface in the same shape: a divide-by-zero style runtime
	// error through the handle matches the ad-hoc one.
	bad, err := sc.Prepare("SELECT balance FROM nowhere")
	if err != nil {
		t.Fatal(err)
	}
	_, prepErr := bad.Exec()
	_, adhocErr := c.Query("SELECT balance FROM nowhere")
	if prepErr == nil || adhocErr == nil {
		t.Fatalf("both paths must fail: prepared %v, ad hoc %v", prepErr, adhocErr)
	}
	if prepErr.Error() != adhocErr.Error() {
		t.Fatalf("error drift: prepared %q vs ad hoc %q", prepErr, adhocErr)
	}
}

// TestPrepareRejectsBadSQL: parse errors surface at prepare time.
func TestPrepareRejectsBadSQL(t *testing.T) {
	s := startServer(t)
	c := dialV2(t, s)
	if _, err := c.(client.StmtConn).Prepare("SELEKT 1"); err == nil {
		t.Fatal("prepare of invalid SQL must fail")
	}
	// Transaction control is session state and unpreparable.
	if _, err := c.(client.StmtConn).Prepare("BEGIN"); err == nil {
		t.Fatal("prepare of BEGIN must fail")
	}
}

// TestPreparedJoinsTransaction: a prepared mutation executed inside an
// open client transaction joins it — rollback reverts it, exactly as
// the same SQL sent ad hoc would behave.
func TestPreparedJoinsTransaction(t *testing.T) {
	s := startServer(t)
	c := dialV2(t, s)
	st, err := c.(client.StmtConn).Prepare("INSERT INTO accounts (id, balance) VALUES ($id, $b)")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(sqlmini.Args{"id": 77, "b": 700}); err != nil {
		t.Fatal(err)
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("SELECT count(*) FROM accounts WHERE id = 77")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 0 {
		t.Fatal("rolled-back prepared INSERT must not survive")
	}

	// And commit publishes.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(sqlmini.Args{"id": 78, "b": 800}); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	res, _ = c.Query("SELECT count(*) FROM accounts WHERE id = 78")
	if res.Rows[0][0].Int() != 1 {
		t.Fatal("committed prepared INSERT must survive")
	}
}

// TestPreparedReplicates: mutations through a prepared handle reach
// attached replicas like their ad-hoc equivalents (replication ships
// the statement text recorded at prepare time).
func TestPreparedReplicates(t *testing.T) {
	master := startServer(t)
	replicaDB := sqlmini.NewDB()
	replica := NewServer("replica", WithUser("alice", "secret"), WithReadOnly())
	replica.AddDatabase("app", replicaDB)
	if err := master.SyncReplica(replica); err != nil {
		t.Fatal(err)
	}
	master.AttachReplica(replica)

	c := dialV2(t, master)
	st, err := c.(client.StmtConn).Prepare("UPDATE accounts SET balance = balance + $d WHERE id = $id")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(sqlmini.Args{"d": 11, "id": 1}); err != nil {
		t.Fatal(err)
	}
	res, err := replicaDB.Query("SELECT balance FROM accounts WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 111 {
		t.Fatalf("replica balance = %d, want 111", res.Rows[0][0].Int())
	}
}

// TestPreparedReadOnlyGate: the replica flag is enforced at execution
// time, so a handle prepared before promotion/demotion behaves like
// fresh SQL would.
func TestPreparedReadOnlyGate(t *testing.T) {
	s := startServer(t)
	c := dialV2(t, s)
	st, err := c.(client.StmtConn).Prepare("UPDATE accounts SET balance = 0 WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	s.SetReadOnly(true)
	if _, err := st.Exec(); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("prepared mutation on read-only replica: err = %v", err)
	}
	// Reads still work, and demotion back re-enables the handle.
	rd, err := c.(client.StmtConn).Prepare("SELECT count(*) FROM accounts")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Exec(); err != nil {
		t.Fatalf("prepared read on read-only replica: %v", err)
	}
	s.SetReadOnly(false)
	if _, err := st.Exec(); err != nil {
		t.Fatalf("prepared mutation after demotion: %v", err)
	}
}

// TestCloseStmt: a closed handle is gone server-side (bad-handle error
// on reuse through a fresh frame), re-closing is a no-op, and closing
// an unknown handle does not kill the session.
func TestCloseStmt(t *testing.T) {
	s := startServer(t)
	c := dialV2(t, s)
	st, err := c.(client.StmtConn).Prepare("SELECT count(*) FROM accounts")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	// The handle id is dead on the server: replay its exec frame raw.
	nc := c.(*nativeConn)
	handle := st.(*nativeStmt).handle
	f, err := nc.roundTrip(msgExecStmt, execStmtMsg{Handle: handle}.encode())
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != msgError {
		t.Fatalf("exec of closed handle answered 0x%04x, want msgError", f.Type)
	}
	code, _, derr := decodeError(f.Payload)
	if derr != nil || code != codeBadHandle {
		t.Fatalf("code = %d (%v), want codeBadHandle", code, derr)
	}
	// The session survived and still serves.
	if _, err := c.Query("SELECT count(*) FROM accounts"); err != nil {
		t.Fatal(err)
	}
}

// TestSessionStmtLimit: the per-session handle table is bounded.
func TestSessionStmtLimit(t *testing.T) {
	s := startServer(t)
	c := dialV2(t, s)
	sc := c.(client.StmtConn)
	for i := 0; i < maxSessionStmts; i++ {
		if _, err := sc.Prepare(fmt.Sprintf("SELECT %d FROM accounts", i)); err != nil {
			t.Fatalf("prepare %d: %v", i, err)
		}
	}
	if _, err := sc.Prepare("SELECT count(*) FROM accounts"); err == nil ||
		!strings.Contains(err.Error(), "limit") {
		t.Fatalf("prepare beyond the session limit: err = %v", err)
	}
}

// TestSessionStmtLimitFreesOnClose: closing a handle makes room.
func TestSessionStmtLimitFreesOnClose(t *testing.T) {
	s := startServer(t)
	c := dialV2(t, s)
	sc := c.(client.StmtConn)
	handles := make([]client.ConnStmt, 0, maxSessionStmts)
	for i := 0; i < maxSessionStmts; i++ {
		h, err := sc.Prepare(fmt.Sprintf("SELECT %d FROM accounts", i))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if err := handles[0].Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Prepare("SELECT count(*) FROM accounts"); err != nil {
		t.Fatalf("prepare after a close must fit again: %v", err)
	}
}

// TestTableVersionsProbe: the probe reports live per-table counters,
// moves with mutations, costs zero SQL statements, and reports 0 for
// unknown tables.
func TestTableVersionsProbe(t *testing.T) {
	s := startServer(t)
	c := dialV2(t, s)
	tvc := c.(client.TableVersionConn)

	queriesBefore := s.QueriesServed()
	v1, err := tvc.TableVersions("accounts", "nope")
	if err != nil {
		t.Fatal(err)
	}
	if v1[1] != 0 {
		t.Fatalf("unknown table version = %d, want 0", v1[1])
	}
	if _, err := c.Exec("UPDATE accounts SET balance = balance + 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	v2, err := tvc.TableVersions("accounts", "nope")
	if err != nil {
		t.Fatal(err)
	}
	if v2[0] <= v1[0] {
		t.Fatalf("accounts version must move: %d then %d", v1[0], v2[0])
	}
	if got := s.VersionProbesServed(); got != 2 {
		t.Fatalf("VersionProbesServed = %d, want 2", got)
	}
	// Probes are not statements: only the UPDATE counted.
	if got := s.QueriesServed() - queriesBefore; got != 1 {
		t.Fatalf("probes leaked into QueriesServed: %d statements, want 1", got)
	}
}

// TestServerGatesUnnegotiatedFrames: a session that negotiated v1 on
// the wire cannot smuggle v2 frames past the handshake — the server
// enforces the capability mask, not just the client library.
func TestServerGatesUnnegotiatedFrames(t *testing.T) {
	s := startServer(t)
	conn, err := wire.Dial(s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A v1 hello: no capability bits.
	hello := helloMsg{ProtocolVersion: 1, MinProtocolVersion: 1, Database: "app",
		User: "alice", Password: "secret", ClientInfo: "raw"}
	if err := conn.Send(msgHello, hello.encode()); err != nil {
		t.Fatal(err)
	}
	f, err := conn.RecvTimeout(2 * time.Second)
	if err != nil || f.Type != msgHelloOK {
		t.Fatalf("handshake: %v / 0x%04x", err, f.Type)
	}
	for _, probe := range []struct {
		name string
		typ  uint16
		body []byte
	}{
		{"prepare", msgPrepare, prepareMsg{SQL: "SELECT 1"}.encode()},
		{"execStmt", msgExecStmt, execStmtMsg{Handle: 1}.encode()},
		{"closeStmt", msgCloseStmt, closeStmtMsg{Handle: 1}.encode()},
		{"tableVersions", msgTableVersions, tableVersionsMsg{Names: []string{"accounts"}}.encode()},
	} {
		if err := conn.Send(probe.typ, probe.body); err != nil {
			t.Fatal(err)
		}
		f, err := conn.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != msgError {
			t.Fatalf("%s on v1 session answered 0x%04x, want msgError", probe.name, f.Type)
		}
		code, _, derr := decodeError(f.Payload)
		if derr != nil || code != codeNotSupported {
			t.Fatalf("%s: code = %d (%v), want codeNotSupported", probe.name, code, derr)
		}
	}
	// The session is still alive for negotiated traffic.
	if err := conn.Send(msgPing, nil); err != nil {
		t.Fatal(err)
	}
	if f, err := conn.RecvTimeout(2 * time.Second); err != nil || f.Type != msgPong {
		t.Fatalf("ping after refusals: %v / 0x%04x", err, f.Type)
	}
}

// TestHandleSweepOnDisconnect: handles do not outlive their session —
// a new connection starts with a fresh handle space (handle ids
// restart, and the old session's table was dropped with it).
func TestHandleSweepOnDisconnect(t *testing.T) {
	s := startServer(t)
	c1 := dialV2(t, s)
	st, err := c1.(client.StmtConn).Prepare("SELECT count(*) FROM accounts")
	if err != nil {
		t.Fatal(err)
	}
	h1 := st.(*nativeStmt).handle
	c1.Close()

	c2 := dialV2(t, s)
	st2, err := c2.(client.StmtConn).Prepare("SELECT count(*) FROM accounts")
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.(*nativeStmt).handle; got != h1 {
		t.Fatalf("fresh session's first handle = %d, want %d (per-session id space)", got, h1)
	}
	if _, err := st2.Exec(); err != nil {
		t.Fatal(err)
	}
}
