package dbms

import (
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/sqlmini"
)

func asBatchConn(t *testing.T, c client.Conn) client.BatchConn {
	t.Helper()
	bc, ok := c.(client.BatchConn)
	if !ok {
		t.Fatalf("%T must implement client.BatchConn", c)
	}
	return bc
}

// TestBatchOneRoundTrip: N statements, one frame each way — the server
// counts one batch and N statements.
func TestBatchOneRoundTrip(t *testing.T) {
	s := startServer(t)
	bc := asBatchConn(t, dial(t, s, 1))

	rs, err := bc.ExecBatch(true, []client.Statement{
		{SQL: "UPDATE accounts SET balance = balance + 1 WHERE id = ?", Args: []any{1}},
		{SQL: "UPDATE accounts SET balance = balance - 1 WHERE id = ?", Args: []any{2}},
		{SQL: "SELECT balance FROM accounts WHERE id = $id", Args: []any{sqlmini.Args{"id": int64(1)}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || rs[0].Affected != 1 || rs[1].Affected != 1 {
		t.Fatalf("results = %+v", rs)
	}
	if got := rs[2].Rows[0][0].Int(); got != 101 {
		t.Fatalf("balance = %d", got)
	}
	if b := s.BatchesServed(); b != 1 {
		t.Fatalf("batches = %d, want 1", b)
	}
	if q := s.QueriesServed(); q != 3 {
		t.Fatalf("queries = %d, want 3", q)
	}
}

// TestAtomicBatchRollsBackOnFailure: the money must not move when a
// later statement of the batch fails.
func TestAtomicBatchRollsBackOnFailure(t *testing.T) {
	s := startServer(t)
	bc := asBatchConn(t, dial(t, s, 1))

	_, err := bc.ExecBatch(true, []client.Statement{
		{SQL: "UPDATE accounts SET balance = balance - 50 WHERE id = 1"},
		{SQL: "INSERT INTO accounts (id, balance) VALUES (1, 0)"}, // duplicate PK
	})
	if err == nil {
		t.Fatal("batch must fail")
	}
	if !strings.Contains(err.Error(), "batch statement 2") {
		t.Fatalf("error must name the failing statement: %v", err)
	}
	res, qerr := dial(t, s, 1).Query("SELECT balance FROM accounts WHERE id = 1")
	if qerr != nil {
		t.Fatal(qerr)
	}
	if got := res.Rows[0][0].Int(); got != 100 {
		t.Fatalf("balance after rolled-back batch = %d, want 100", got)
	}
}

// TestAtomicBatchRejectsTxControl: atomic batches own their
// transaction; embedded BEGIN/COMMIT is a protocol error, and DDL —
// which the wrapping ROLLBACK could not revert — is rejected up front
// (same contract as LocalStore.ExecBatch).
func TestAtomicBatchRejectsTxControl(t *testing.T) {
	s := startServer(t)
	bc := asBatchConn(t, dial(t, s, 1))
	_, err := bc.ExecBatch(true, []client.Statement{{SQL: "BEGIN"}})
	if err == nil || !strings.Contains(err.Error(), "transaction control") {
		t.Fatalf("err = %v", err)
	}
	_, err = bc.ExecBatch(true, []client.Statement{
		{SQL: "CREATE TABLE evil (id INTEGER)"},
		{SQL: "INSERT INTO accounts (id, balance) VALUES (1, 0)"},
	})
	if err == nil || !strings.Contains(err.Error(), "DDL") {
		t.Fatalf("err = %v", err)
	}
	if _, qerr := dial(t, s, 1).Query("SELECT count(*) FROM evil"); qerr == nil {
		t.Fatal("rejected batch must not have created the table")
	}
}

// TestNonAtomicBatchCarriesTxControl: a non-atomic batch may ship its
// own BEGIN/.../COMMIT and behaves exactly like the statements sent
// one frame at a time.
func TestNonAtomicBatchCarriesTxControl(t *testing.T) {
	s := startServer(t)
	bc := asBatchConn(t, dial(t, s, 1))
	rs, err := bc.ExecBatch(false, []client.Statement{
		{SQL: "BEGIN"},
		{SQL: "UPDATE accounts SET balance = 0 WHERE id = 1"},
		{SQL: "ROLLBACK"},
		{SQL: "SELECT balance FROM accounts WHERE id = 1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rs[3].Rows[0][0].Int(); got != 100 {
		t.Fatalf("rolled-back update leaked: balance = %d", got)
	}
}

// TestAtomicBatchInsideClientTxRejected: with a transaction already
// open on the session, the server cannot honor the atomic-batch
// rollback promise, so the frame is refused and the outer transaction
// left untouched.
func TestAtomicBatchInsideClientTxRejected(t *testing.T) {
	s := startServer(t)
	c := dial(t, s, 1)
	bc := asBatchConn(t, c)
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	_, err := bc.ExecBatch(true, []client.Statement{
		{SQL: "UPDATE accounts SET balance = 7 WHERE id = 1"},
	})
	if err == nil || !strings.Contains(err.Error(), "open transaction") {
		t.Fatalf("err = %v", err)
	}
	// The outer transaction is intact and still the client's to end.
	if _, err := c.Exec("UPDATE accounts SET balance = 8 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("SELECT balance FROM accounts WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 100 {
		t.Fatalf("outer rollback must undo everything: balance = %d", got)
	}
}

// TestBatchReadOnlyReplica: the read-only gate applies to batch frames
// before anything executes.
func TestBatchReadOnlyReplica(t *testing.T) {
	s := startServer(t, WithReadOnly())
	bc := asBatchConn(t, dial(t, s, 1))
	_, err := bc.ExecBatch(true, []client.Statement{
		{SQL: "SELECT count(*) FROM accounts"},
		{SQL: "UPDATE accounts SET balance = 0 WHERE id = 1"},
	})
	if err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("err = %v", err)
	}
	res, qerr := dial(t, s, 1).Query("SELECT balance FROM accounts WHERE id = 1")
	if qerr != nil {
		t.Fatal(qerr)
	}
	if res.Rows[0][0].Int() != 100 {
		t.Fatal("read-only replica must not apply batch writes")
	}
}

// TestBatchReplication: a committed atomic batch reaches replicas; a
// rolled-back one never does.
func TestBatchReplication(t *testing.T) {
	master := startServer(t)
	replicaDB := sqlmini.NewDB()
	replica := NewServer("replica", WithReadOnly())
	replica.AddDatabase("app", replicaDB)
	if err := master.SyncReplica(replica); err != nil {
		t.Fatal(err)
	}
	master.AttachReplica(replica)

	bc := asBatchConn(t, dial(t, master, 1))
	if _, err := bc.ExecBatch(true, []client.Statement{
		{SQL: "UPDATE accounts SET balance = 111 WHERE id = 1"},
	}); err != nil {
		t.Fatal(err)
	}
	res := replica.Database("app").MustExec("SELECT balance FROM accounts WHERE id = 1")
	if res.Rows[0][0].Int() != 111 {
		t.Fatalf("replica balance = %d, want 111", res.Rows[0][0].Int())
	}

	if _, err := bc.ExecBatch(true, []client.Statement{
		{SQL: "UPDATE accounts SET balance = 222 WHERE id = 1"},
		{SQL: "INSERT INTO accounts (id, balance) VALUES (2, 0)"}, // duplicate
	}); err == nil {
		t.Fatal("batch must fail")
	}
	res = replica.Database("app").MustExec("SELECT balance FROM accounts WHERE id = 1")
	if res.Rows[0][0].Int() != 111 {
		t.Fatalf("rolled-back batch must not replicate: replica balance = %d", res.Rows[0][0].Int())
	}

	// A NON-atomic batch failing mid-way keeps its applied prefix on
	// the primary, so the prefix must reach the replicas too — exactly
	// as if the statements had been sent one frame at a time.
	if _, err := bc.ExecBatch(false, []client.Statement{
		{SQL: "UPDATE accounts SET balance = 333 WHERE id = 1"},
		{SQL: "INSERT INTO accounts (id, balance) VALUES (2, 0)"}, // duplicate
	}); err == nil {
		t.Fatal("batch must fail")
	}
	res = replica.Database("app").MustExec("SELECT balance FROM accounts WHERE id = 1")
	if res.Rows[0][0].Int() != 333 {
		t.Fatalf("non-atomic prefix must replicate: replica balance = %d", res.Rows[0][0].Int())
	}
}
