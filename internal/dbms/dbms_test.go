package dbms

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/sqlmini"
)

// startServer boots a server with one database "app" containing a
// seeded accounts table and user alice/secret.
func startServer(t *testing.T, opts ...ServerOption) *Server {
	t.Helper()
	db := sqlmini.NewDB()
	db.MustExec("CREATE TABLE accounts (id INTEGER NOT NULL PRIMARY KEY, balance INTEGER)")
	db.MustExec("INSERT INTO accounts (id, balance) VALUES (1, 100), (2, 200)")
	all := append([]ServerOption{WithUser("alice", "secret")}, opts...)
	s := NewServer("testdb", all...)
	s.AddDatabase("app", db)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func dial(t *testing.T, s *Server, proto uint16) client.Conn {
	t.Helper()
	d := NewNativeDriver(dbver.V(1, 0, 0), proto)
	c, err := d.Connect("dbms://"+s.Addr()+"/app", client.Props{"user": "alice", "password": "secret"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestConnectAndQuery(t *testing.T) {
	s := startServer(t)
	c := dial(t, s, 1)

	res, err := c.Query("SELECT balance FROM accounts WHERE id = ?", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 100 {
		t.Fatalf("rows = %+v", res.Rows)
	}

	if _, err := c.Exec("UPDATE accounts SET balance = balance + 5 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	res, _ = c.Query("SELECT balance FROM accounts WHERE id = 1")
	if res.Rows[0][0].Int() != 105 {
		t.Fatalf("balance = %d", res.Rows[0][0].Int())
	}
	if s.QueriesServed() < 3 {
		t.Errorf("QueriesServed = %d", s.QueriesServed())
	}
}

func TestNamedArgsOverWire(t *testing.T) {
	s := startServer(t)
	c := dial(t, s, 1)
	res, err := c.Query("SELECT id FROM accounts WHERE balance > $min ORDER BY id", sqlmini.Args{"min": 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestProtocolMismatch(t *testing.T) {
	s := startServer(t, WithProtocolVersion(2))
	d := NewNativeDriver(dbver.V(1, 0, 0), 1) // old driver, new server
	_, err := d.Connect("dbms://"+s.Addr()+"/app", client.Props{"user": "alice", "password": "secret"})
	if !errors.Is(err, client.ErrProtocolMismatch) {
		t.Fatalf("err = %v, want ErrProtocolMismatch", err)
	}
	// Matching version connects fine.
	d2 := NewNativeDriver(dbver.V(2, 0, 0), 2)
	c, err := d2.Connect("dbms://"+s.Addr()+"/app", client.Props{"user": "alice", "password": "secret"})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestAuthFailure(t *testing.T) {
	s := startServer(t)
	d := NewNativeDriver(dbver.V(1, 0, 0), 1)
	_, err := d.Connect("dbms://"+s.Addr()+"/app", client.Props{"user": "alice", "password": "wrong"})
	if !errors.Is(err, client.ErrAuth) {
		t.Fatalf("err = %v", err)
	}
	_, err = d.Connect("dbms://"+s.Addr()+"/app", client.Props{"user": "mallory", "password": "x"})
	if !errors.Is(err, client.ErrAuth) {
		t.Fatalf("err = %v", err)
	}
}

func TestNoSuchDatabase(t *testing.T) {
	s := startServer(t)
	d := NewNativeDriver(dbver.V(1, 0, 0), 1)
	_, err := d.Connect("dbms://"+s.Addr()+"/nope", client.Props{"user": "alice", "password": "secret"})
	if !errors.Is(err, client.ErrNoDatabase) {
		t.Fatalf("err = %v", err)
	}
}

func TestQueryErrorDoesNotKillConnection(t *testing.T) {
	s := startServer(t)
	c := dial(t, s, 1)
	if _, err := c.Query("SELECT * FROM missing_table"); err == nil {
		t.Fatal("expected query error")
	}
	// Connection still usable.
	if _, err := c.Query("SELECT 1"); err != nil {
		t.Fatalf("connection died after query error: %v", err)
	}
}

func TestTransactionsOverWire(t *testing.T) {
	s := startServer(t)
	c := dial(t, s, 1)

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if !c.InTx() {
		t.Error("InTx should be true")
	}
	if _, err := c.Exec("UPDATE accounts SET balance = 0 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	if c.InTx() {
		t.Error("InTx should be false after rollback")
	}
	res, _ := c.Query("SELECT balance FROM accounts WHERE id = 1")
	if res.Rows[0][0].Int() != 100 {
		t.Fatalf("rollback over wire failed: %d", res.Rows[0][0].Int())
	}

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("UPDATE accounts SET balance = 42 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	res, _ = c.Query("SELECT balance FROM accounts WHERE id = 1")
	if res.Rows[0][0].Int() != 42 {
		t.Fatalf("commit over wire failed: %d", res.Rows[0][0].Int())
	}
}

func TestPingAndActiveSessions(t *testing.T) {
	s := startServer(t)
	c := dial(t, s, 1)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if n := s.ActiveSessions(); n != 1 {
		t.Errorf("ActiveSessions = %d", n)
	}
	if !s.UserHasSession("alice") {
		t.Error("UserHasSession(alice) = false")
	}
	if s.UserHasSession("bob") {
		t.Error("UserHasSession(bob) = true")
	}
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for s.ActiveSessions() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := s.ActiveSessions(); n != 0 {
		t.Errorf("ActiveSessions after close = %d", n)
	}
}

func TestStopKillsSessionsAndRestartWorks(t *testing.T) {
	s := startServer(t)
	c := dial(t, s, 1)
	addr := s.Addr()
	s.Stop()

	if _, err := c.Query("SELECT 1"); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Maintenance done: restart on the same address; data survived.
	if err := s.Start(addr); err != nil {
		t.Fatal(err)
	}
	c2 := dial(t, s, 1)
	res, err := c2.Query("SELECT count(*) FROM accounts")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 2 {
		t.Fatal("data lost across restart")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	s := startServer(t)
	if err := s.Start("127.0.0.1:0"); err == nil {
		t.Fatal("second Start should fail")
	}
}

func TestReadOnlyReplicaRejectsWrites(t *testing.T) {
	s := startServer(t, WithReadOnly())
	c := dial(t, s, 1)
	if _, err := c.Query("SELECT count(*) FROM accounts"); err != nil {
		t.Fatalf("reads must work on a replica: %v", err)
	}
	if _, err := c.Exec("UPDATE accounts SET balance = 0 WHERE id = 1"); err == nil {
		t.Fatal("writes must be rejected on a read-only replica")
	}
}

func TestStatementReplication(t *testing.T) {
	master := startServer(t)
	slaveDB := sqlmini.NewDB()
	slave := NewServer("slave", WithUser("alice", "secret"), WithReadOnly())
	slave.AddDatabase("app", slaveDB)
	if err := slave.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(slave.Stop)

	if err := master.SyncReplica(slave); err != nil {
		t.Fatal(err)
	}
	master.AttachReplica(slave)

	mc := dial(t, master, 1)
	if _, err := mc.Exec("INSERT INTO accounts (id, balance) VALUES (3, 300)"); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Exec("UPDATE accounts SET balance = balance * 2 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}

	// Replica sees both changes.
	sc := dial(t, slave, 1)
	res, err := sc.Query("SELECT balance FROM accounts WHERE id IN (1, 3) ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 200 || res.Rows[1][0].Int() != 300 {
		t.Fatalf("replica rows = %+v", res.Rows)
	}

	// Detach stops the flow.
	master.DetachReplica(slave)
	if _, err := mc.Exec("INSERT INTO accounts (id, balance) VALUES (4, 400)"); err != nil {
		t.Fatal(err)
	}
	res, _ = sc.Query("SELECT count(*) FROM accounts WHERE id = 4")
	if res.Rows[0][0].Int() != 0 {
		t.Fatal("detached replica still received statements")
	}
}

func TestFailoverPromoteSlave(t *testing.T) {
	master := startServer(t)
	slave := NewServer("slave", WithUser("alice", "secret"), WithReadOnly())
	slave.AddDatabase("app", sqlmini.NewDB())
	if err := slave.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(slave.Stop)
	if err := master.SyncReplica(slave); err != nil {
		t.Fatal(err)
	}
	master.AttachReplica(slave)

	// Maintenance: stop master, promote slave.
	master.Stop()
	slave.SetReadOnly(false)

	sc := dial(t, slave, 1)
	if _, err := sc.Exec("INSERT INTO accounts (id, balance) VALUES (10, 1)"); err != nil {
		t.Fatalf("promoted slave must accept writes: %v", err)
	}
}

func TestImageFactory(t *testing.T) {
	s := startServer(t, WithProtocolVersion(3))
	rt := driverimg.NewRuntime()
	rt.Register(DriverKind, ImageFactory())

	img := &driverimg.Image{
		Manifest: driverimg.Manifest{
			Kind:            DriverKind,
			API:             dbver.APIOf("JDBC", 3, 0),
			Version:         dbver.V(2, 1, 0),
			ProtocolVersion: 3,
			Options:         map[string]string{"user": "alice", "password": "secret"},
		},
	}
	drv, _, err := rt.LoadBytes(img.Encode())
	if err != nil {
		t.Fatal(err)
	}
	// Credentials come from manifest options; the app passes none.
	c, err := drv.Connect("dbms://"+s.Addr()+"/app", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("SELECT count(*) FROM accounts")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 2 {
		t.Fatal("query through image-loaded driver failed")
	}
	if drv.Version() != dbver.V(2, 1, 0) {
		t.Errorf("Version = %v", drv.Version())
	}
}

func TestPinnedURLFailoverDriver(t *testing.T) {
	// Two servers; a pre-configured driver pins connections to the
	// second one regardless of the application URL (paper §5.2).
	a := startServer(t)
	bDB := sqlmini.NewDB()
	bDB.MustExec("CREATE TABLE whoami (name VARCHAR)")
	bDB.MustExec("INSERT INTO whoami (name) VALUES ('server-b')")
	b := NewServer("server-b", WithUser("alice", "secret"))
	b.AddDatabase("app", bDB)
	if err := b.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Stop)

	rt := driverimg.NewRuntime()
	rt.Register(DriverKind, ImageFactory())
	img := &driverimg.Image{
		Manifest: driverimg.Manifest{
			Kind:            DriverKind,
			Version:         dbver.V(1, 0, 0),
			ProtocolVersion: 1,
			PinnedURL:       "dbms://" + b.Addr() + "/app",
			Options:         map[string]string{"user": "alice", "password": "secret"},
		},
	}
	drv, err := rt.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	// Application asks for server A; the pinned driver goes to B.
	c, err := drv.Connect("dbms://"+a.Addr()+"/app", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("SELECT name FROM whoami")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Str() != "server-b" {
		t.Fatalf("connected to %s, want server-b", res.Rows[0][0].Str())
	}
}

func TestConcurrentClients(t *testing.T) {
	s := startServer(t)
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := NewNativeDriver(dbver.V(1, 0, 0), 1)
			c, err := d.Connect("dbms://"+s.Addr()+"/app", client.Props{"user": "alice", "password": "secret"})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				if _, err := c.Exec("UPDATE accounts SET balance = balance + 1 WHERE id = 2"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c := dial(t, s, 1)
	res, err := c.Query("SELECT balance FROM accounts WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 200+n*20 {
		t.Fatalf("balance = %d, want %d", got, 200+n*20)
	}
}

func TestWrongSchemeRejected(t *testing.T) {
	d := NewNativeDriver(dbver.V(1, 0, 0), 1)
	if _, err := d.Connect("sequoia://h:1/db", nil); err == nil {
		t.Fatal("expected scheme rejection")
	}
}
