package dbms

import (
	"testing"

	"repro/internal/client"
	"repro/internal/dbver"
	"repro/internal/sqlmini"
)

func benchServer(b *testing.B) (*Server, client.Conn) {
	b.Helper()
	db := sqlmini.NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, v VARCHAR)")
	db.MustExec("INSERT INTO t (id, v) VALUES (1, 'x')")
	s := NewServer("bench", WithUser("u", "p"))
	s.AddDatabase("d", db)
	if err := s.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Stop)
	d := NewNativeDriver(dbver.V(1, 0, 0), 1)
	c, err := d.Connect("dbms://"+s.Addr()+"/d", client.Props{"user": "u", "password": "p"})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return s, c
}

func BenchmarkQueryOverWire(b *testing.B) {
	_, c := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query("SELECT v FROM t WHERE id = ?", 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecOverWire(b *testing.B) {
	_, c := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Exec("UPDATE t SET v = 'y' WHERE id = 1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConnectHandshake(b *testing.B) {
	s, _ := benchServer(b)
	d := NewNativeDriver(dbver.V(1, 0, 0), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := d.Connect("dbms://"+s.Addr()+"/d", client.Props{"user": "u", "password": "p"})
		if err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}
