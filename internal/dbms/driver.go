package dbms

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/sqlmini"
	"repro/internal/wire"
)

// DriverKind is the driver-image kind instantiated by this package's
// image factory.
const DriverKind = "dbms-native"

// NativeDriver is the conventional ("legacy") driver for the DBMS
// protocol: the thing the paper's lifecycle installs by hand on every
// client machine. It speaks exactly one protocol version; pointing it at
// a server speaking another version fails at connect time.
type NativeDriver struct {
	version      dbver.Version
	protoVersion uint16
	dialTimeout  time.Duration
}

// NativeDriverOption configures a NativeDriver.
type NativeDriverOption func(*NativeDriver)

// WithDialTimeout bounds connection establishment.
func WithDialTimeout(d time.Duration) NativeDriverOption {
	return func(n *NativeDriver) { n.dialTimeout = d }
}

// NewNativeDriver builds a driver of the given build version speaking
// the given wire-protocol version.
func NewNativeDriver(version dbver.Version, protoVersion uint16, opts ...NativeDriverOption) *NativeDriver {
	d := &NativeDriver{version: version, protoVersion: protoVersion, dialTimeout: 5 * time.Second}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Name implements client.Driver.
func (d *NativeDriver) Name() string { return DriverKind }

// Version implements client.Driver.
func (d *NativeDriver) Version() dbver.Version { return d.version }

// ProtocolVersion reports the wire-protocol version this build speaks.
func (d *NativeDriver) ProtocolVersion() uint16 { return d.protoVersion }

// Connect implements client.Driver. URL form:
// dbms://host:port/database?user=u&password=p — props override URL
// options.
func (d *NativeDriver) Connect(rawURL string, props client.Props) (client.Conn, error) {
	u, err := client.ParseURL(rawURL)
	if err != nil {
		return nil, err
	}
	if u.Scheme != "dbms" {
		return nil, fmt.Errorf("dbms: driver cannot handle scheme %q", u.Scheme)
	}
	opts := u.Options.Merge(props)
	conn, err := wire.Dial(u.Hosts[0], d.dialTimeout)
	if err != nil {
		return nil, err
	}
	hello := helloMsg{
		ProtocolVersion: d.protoVersion,
		Database:        u.Database,
		User:            opts["user"],
		Password:        opts["password"],
		ClientInfo:      fmt.Sprintf("%s %s (proto %d)", DriverKind, d.version, d.protoVersion),
	}
	if err := conn.Send(msgHello, hello.encode()); err != nil {
		conn.Close()
		return nil, err
	}
	f, err := conn.RecvTimeout(d.dialTimeout)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dbms: handshake: %w", err)
	}
	switch f.Type {
	case msgHelloOK:
		ok, err := decodeHelloOK(f.Payload)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("dbms: handshake: %w", err)
		}
		return &nativeConn{conn: conn, server: ok.ServerName, sessionID: ok.SessionID}, nil
	case msgError:
		code, msg, derr := decodeError(f.Payload)
		conn.Close()
		if derr != nil {
			return nil, fmt.Errorf("dbms: handshake: %w", derr)
		}
		return nil, wrapServerError(code, msg)
	default:
		conn.Close()
		return nil, fmt.Errorf("dbms: handshake: unexpected frame 0x%04x", f.Type)
	}
}

// wrapServerError maps protocol error codes onto the shared client
// errors so applications can errors.Is against them.
func wrapServerError(code uint16, msg string) error {
	switch code {
	case codeProtocolMismatch:
		return fmt.Errorf("%w: %s", client.ErrProtocolMismatch, msg)
	case codeAuthFailed:
		return fmt.Errorf("%w: %s", client.ErrAuth, msg)
	case codeNoDatabase:
		return fmt.Errorf("%w: %s", client.ErrNoDatabase, msg)
	case codeReadOnly, codeQueryError:
		return fmt.Errorf("dbms: %s", msg)
	case codeShutdown:
		return fmt.Errorf("%w: %s", client.ErrClosed, msg)
	default:
		return fmt.Errorf("dbms: [%d] %s", code, msg)
	}
}

// nativeConn is one live protocol connection. Request/response is
// serialized with a mutex: one outstanding statement per connection,
// like classic JDBC.
type nativeConn struct {
	mu        sync.Mutex
	conn      *wire.Conn
	server    string
	sessionID uint64
	inTx      bool
	closed    bool
}

func (c *nativeConn) roundTrip(typ uint16, payload []byte) (wire.Frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		// Nothing was transmitted: safe to retry elsewhere.
		return wire.Frame{}, fmt.Errorf("%w (%w)", client.ErrClosed, client.ErrStatementNotSent)
	}
	if err := c.conn.Send(typ, payload); err != nil {
		// The send failed before the frame left, so the statement
		// provably never executed; mark it retryable for store layers.
		c.closed = true
		return wire.Frame{}, fmt.Errorf("%w (%w): %v", client.ErrClosed, client.ErrStatementNotSent, err)
	}
	f, err := c.conn.Recv()
	if err != nil {
		// The frame was (at least partially) transmitted but no reply
		// came back — the server may or may not have executed it. NOT
		// marked ErrStatementNotSent: the outcome is ambiguous.
		c.closed = true
		return wire.Frame{}, fmt.Errorf("%w: %v", client.ErrClosed, err)
	}
	return f, nil
}

// marshalExec converts one (sql, args) pair to the wire form, mapping
// a single sqlmini.Args argument to named parameters.
func marshalExec(sql string, args []any) (execMsg, error) {
	m := execMsg{SQL: sql}
	if len(args) == 1 {
		if named, ok := args[0].(sqlmini.Args); ok {
			m.Named = make(map[string]sqlmini.Value, len(named))
			for k, v := range named {
				val, err := sqlmini.FromGo(v)
				if err != nil {
					return m, err
				}
				m.Named[k] = val
			}
			return m, nil
		}
	}
	for _, a := range args {
		v, err := sqlmini.FromGo(a)
		if err != nil {
			return m, err
		}
		m.Positional = append(m.Positional, v)
	}
	return m, nil
}

func (c *nativeConn) exec(sql string, args []any) (*client.Result, error) {
	m, err := marshalExec(sql, args)
	if err != nil {
		return nil, err
	}
	f, err := c.roundTrip(msgExec, m.encode())
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case msgResult:
		r, err := decodeResult(f.Payload)
		if err != nil {
			return nil, err
		}
		return &client.Result{Cols: r.Cols, Rows: r.Rows, Affected: r.Affected}, nil
	case msgError:
		code, msg, derr := decodeError(f.Payload)
		if derr != nil {
			return nil, derr
		}
		return nil, wrapServerError(code, msg)
	default:
		return nil, fmt.Errorf("dbms: unexpected frame 0x%04x", f.Type)
	}
}

// Exec implements client.Conn.
func (c *nativeConn) Exec(sql string, args ...any) (*client.Result, error) {
	return c.exec(sql, args)
}

// Query implements client.Conn.
func (c *nativeConn) Query(sql string, args ...any) (*client.Result, error) {
	return c.exec(sql, args)
}

// ExecBatch implements client.BatchConn: the whole statement list
// travels in one msgExecBatch frame and comes back in one
// msgBatchResult frame — a single wire round trip however many
// statements the batch carries.
func (c *nativeConn) ExecBatch(atomic bool, stmts []client.Statement) ([]*client.Result, error) {
	bm := batchMsg{Atomic: atomic, Stmts: make([]execMsg, len(stmts))}
	for i, st := range stmts {
		m, err := marshalExec(st.SQL, st.Args)
		if err != nil {
			return nil, fmt.Errorf("dbms: batch statement %d: %w", i+1, err)
		}
		bm.Stmts[i] = m
	}
	f, err := c.roundTrip(msgExecBatch, bm.encode())
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case msgBatchResult:
		br, err := decodeBatchResult(f.Payload)
		if err != nil {
			return nil, err
		}
		if br.ErrIndex >= 0 {
			return nil, fmt.Errorf("dbms: batch statement %d: %w",
				br.ErrIndex+1, wrapServerError(br.ErrCode, br.ErrMsg))
		}
		if br.ErrCode != 0 {
			// Batch-level failure (e.g. the wrapping COMMIT): no
			// statement index to point at.
			return nil, wrapServerError(br.ErrCode, br.ErrMsg)
		}
		out := make([]*client.Result, len(br.Results))
		for i, r := range br.Results {
			out[i] = &client.Result{Cols: r.Cols, Rows: r.Rows, Affected: r.Affected}
		}
		return out, nil
	case msgError:
		code, msg, derr := decodeError(f.Payload)
		if derr != nil {
			return nil, derr
		}
		return nil, wrapServerError(code, msg)
	default:
		return nil, fmt.Errorf("dbms: unexpected frame 0x%04x", f.Type)
	}
}

// Begin implements client.Conn.
func (c *nativeConn) Begin() error {
	if _, err := c.exec("BEGIN", nil); err != nil {
		return err
	}
	c.mu.Lock()
	c.inTx = true
	c.mu.Unlock()
	return nil
}

// Commit implements client.Conn.
func (c *nativeConn) Commit() error {
	if _, err := c.exec("COMMIT", nil); err != nil {
		return err
	}
	c.mu.Lock()
	c.inTx = false
	c.mu.Unlock()
	return nil
}

// Rollback implements client.Conn.
func (c *nativeConn) Rollback() error {
	if _, err := c.exec("ROLLBACK", nil); err != nil {
		return err
	}
	c.mu.Lock()
	c.inTx = false
	c.mu.Unlock()
	return nil
}

// InTx implements client.Conn.
func (c *nativeConn) InTx() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inTx
}

// Ping implements client.Conn.
func (c *nativeConn) Ping() error {
	f, err := c.roundTrip(msgPing, nil)
	if err != nil {
		return err
	}
	if f.Type != msgPong {
		return fmt.Errorf("dbms: unexpected ping reply 0x%04x", f.Type)
	}
	return nil
}

// Close implements client.Conn.
func (c *nativeConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// ImageFactory returns the driverimg factory for DriverKind: it builds a
// NativeDriver whose protocol version and build version come from the
// image manifest, wrapped with manifest semantics (URL pinning, option
// defaults). Register it on a Runtime to make DBMS drivers loadable:
//
//	rt.Register(dbms.DriverKind, dbms.ImageFactory())
func ImageFactory() driverimg.Factory {
	return func(img *driverimg.Image) (client.Driver, error) {
		inner := NewNativeDriver(img.Manifest.Version, img.Manifest.ProtocolVersion)
		return driverimg.WrapDriver(inner, img), nil
	}
}
