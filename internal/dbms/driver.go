package dbms

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/faultnet"
	"repro/internal/sqlmini"
	"repro/internal/wire"
)

// DriverKind is the driver-image kind instantiated by this package's
// image factory.
const DriverKind = "dbms-native"

// NativeDriver is the conventional ("legacy") driver for the DBMS
// protocol: the thing the paper's lifecycle installs by hand on every
// client machine. It speaks exactly one protocol version; pointing it at
// a server speaking another version fails at connect time.
type NativeDriver struct {
	version      dbver.Version
	protoVersion uint16 // highest protocol version offered
	protoMin     uint16 // lowest acceptable protocol version
	dialTimeout  time.Duration
	opTimeout    time.Duration // per-exchange reply deadline
}

// NativeDriverOption configures a NativeDriver.
type NativeDriverOption func(*NativeDriver)

// WithDialTimeout bounds connection establishment.
func WithDialTimeout(d time.Duration) NativeDriverOption {
	return func(n *NativeDriver) { n.dialTimeout = d }
}

// WithOpTimeout bounds each request/response exchange: a reply that
// does not arrive within d fails the operation (and poisons the
// connection — the late reply would desynchronize the stream).
// Default faultnet.DefaultOpTimeout; zero disables.
func WithOpTimeout(d time.Duration) NativeDriverOption {
	return func(n *NativeDriver) { n.opTimeout = d }
}

// WithProtocolFloor lets the driver negotiate down to min when the
// server does not speak the driver's own protocol version: the hello
// offers the [min, protoVersion] range instead of an exact pin. Without
// it a driver is single-version, preserving the paper's step-5
// connect-time failure against a differently versioned server.
func WithProtocolFloor(min uint16) NativeDriverOption {
	return func(n *NativeDriver) { n.protoMin = min }
}

// NewNativeDriver builds a driver of the given build version speaking
// the given wire-protocol version.
func NewNativeDriver(version dbver.Version, protoVersion uint16, opts ...NativeDriverOption) *NativeDriver {
	d := &NativeDriver{version: version, protoVersion: protoVersion,
		protoMin: protoVersion, dialTimeout: 5 * time.Second,
		opTimeout: faultnet.DefaultOpTimeout}
	for _, o := range opts {
		o(d)
	}
	if d.protoMin > d.protoVersion {
		d.protoMin = d.protoVersion
	}
	return d
}

// Name implements client.Driver.
func (d *NativeDriver) Name() string { return DriverKind }

// Version implements client.Driver.
func (d *NativeDriver) Version() dbver.Version { return d.version }

// ProtocolVersion reports the wire-protocol version this build speaks.
func (d *NativeDriver) ProtocolVersion() uint16 { return d.protoVersion }

// Connect implements client.Driver. URL form:
// dbms://host:port/database?user=u&password=p — props override URL
// options.
func (d *NativeDriver) Connect(rawURL string, props client.Props) (client.Conn, error) {
	u, err := client.ParseURL(rawURL)
	if err != nil {
		return nil, err
	}
	if u.Scheme != "dbms" {
		return nil, fmt.Errorf("dbms: driver cannot handle scheme %q", u.Scheme)
	}
	opts := u.Options.Merge(props)
	conn, err := wire.Dial(u.Hosts[0], d.dialTimeout)
	if err != nil {
		return nil, err
	}
	hello := helloMsg{
		ProtocolVersion:    d.protoVersion,
		Database:           u.Database,
		User:               opts["user"],
		Password:           opts["password"],
		ClientInfo:         fmt.Sprintf("%s %s (proto %d)", DriverKind, d.version, d.protoVersion),
		MinProtocolVersion: d.protoMin,
		Capabilities:       capsForVersion(d.protoVersion),
	}
	if err := conn.Send(msgHello, hello.encode()); err != nil {
		conn.Close()
		return nil, err
	}
	f, err := conn.RecvTimeout(d.dialTimeout)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dbms: handshake: %w", err)
	}
	switch f.Type {
	case msgHelloOK:
		ok, err := decodeHelloOK(f.Payload)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("dbms: handshake: %w", err)
		}
		return &nativeConn{conn: conn, server: ok.ServerName, sessionID: ok.SessionID,
			proto: ok.ProtocolVersion, caps: ok.Capabilities,
			opTimeout: d.opTimeout}, nil
	case msgError:
		code, msg, derr := decodeError(f.Payload)
		conn.Close()
		if derr != nil {
			return nil, fmt.Errorf("dbms: handshake: %w", derr)
		}
		return nil, wrapServerError(code, msg)
	default:
		conn.Close()
		return nil, fmt.Errorf("dbms: handshake: unexpected frame 0x%04x", f.Type)
	}
}

// wrapServerError maps protocol error codes onto the shared client
// errors so applications can errors.Is against them.
func wrapServerError(code uint16, msg string) error {
	switch code {
	case codeProtocolMismatch:
		return fmt.Errorf("%w: %s", client.ErrProtocolMismatch, msg)
	case codeAuthFailed:
		return fmt.Errorf("%w: %s", client.ErrAuth, msg)
	case codeNoDatabase:
		return fmt.Errorf("%w: %s", client.ErrNoDatabase, msg)
	case codeReadOnly, codeQueryError, codeBadHandle:
		return fmt.Errorf("dbms: %s", msg)
	case codeNotSupported:
		return fmt.Errorf("%w: %s", client.ErrNotSupported, msg)
	case codeShutdown:
		return fmt.Errorf("%w: %s", client.ErrClosed, msg)
	default:
		return fmt.Errorf("dbms: [%d] %s", code, msg)
	}
}

// nativeConn is one live protocol connection. Request/response is
// serialized with a mutex: one outstanding statement per connection,
// like classic JDBC.
type nativeConn struct {
	mu        sync.Mutex
	conn      *wire.Conn
	server    string
	sessionID uint64
	proto     uint16        // negotiated protocol version
	caps      uint32        // negotiated capability mask
	opTimeout time.Duration // per-exchange reply deadline
	inTx      bool
	closed    bool
}

// NegotiatedProtocol reports the session's negotiated protocol version
// (tests and diagnostics).
func (c *nativeConn) NegotiatedProtocol() uint16 { return c.proto }

// Supports implements client.FeatureConn from the negotiated capability
// mask — no I/O, so pooled stores can gate capability paths cheaply.
func (c *nativeConn) Supports(f client.Feature) bool {
	switch f {
	case client.FeaturePreparedStatements:
		return c.caps&CapPreparedStatements != 0
	case client.FeatureTableVersions:
		return c.caps&CapTableVersions != 0
	default:
		return false
	}
}

func (c *nativeConn) roundTrip(typ uint16, payload []byte) (wire.Frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		// Nothing was transmitted: safe to retry elsewhere.
		return wire.Frame{}, fmt.Errorf("%w (%w)", client.ErrClosed, client.ErrStatementNotSent)
	}
	if err := c.conn.Send(typ, payload); err != nil {
		// The send failed before the frame left, so the statement
		// provably never executed; mark it retryable for store layers.
		c.closed = true
		return wire.Frame{}, fmt.Errorf("%w (%w): %v", client.ErrClosed, client.ErrStatementNotSent, err)
	}
	f, err := c.conn.RecvTimeout(c.opTimeout)
	if err != nil {
		// The frame was (at least partially) transmitted but no reply
		// came back — a transport failure or the op deadline firing.
		// Either way the server may or may not have executed it, so NOT
		// marked ErrStatementNotSent: the outcome is ambiguous, and the
		// store layer's redial contract (ErrExecOutcomeUnknown) owns it.
		c.closed = true
		return wire.Frame{}, fmt.Errorf("%w: %v", client.ErrClosed, err)
	}
	return f, nil
}

// marshalExec converts one (sql, args) pair to the wire form, mapping
// a single sqlmini.Args argument to named parameters.
func marshalExec(sql string, args []any) (execMsg, error) {
	m := execMsg{SQL: sql}
	if len(args) == 1 {
		if named, ok := args[0].(sqlmini.Args); ok {
			m.Named = make(map[string]sqlmini.Value, len(named))
			for k, v := range named {
				val, err := sqlmini.FromGo(v)
				if err != nil {
					return m, err
				}
				m.Named[k] = val
			}
			return m, nil
		}
	}
	for _, a := range args {
		v, err := sqlmini.FromGo(a)
		if err != nil {
			return m, err
		}
		m.Positional = append(m.Positional, v)
	}
	return m, nil
}

// decodeExecReply turns a msgResult/msgError reply frame into the
// client result form — shared by ad-hoc and prepared execution, whose
// replies are identical on the wire.
func decodeExecReply(f wire.Frame) (*client.Result, error) {
	switch f.Type {
	case msgResult:
		r, err := decodeResult(f.Payload)
		if err != nil {
			return nil, err
		}
		return &client.Result{Cols: r.Cols, Rows: r.Rows, Affected: r.Affected}, nil
	case msgError:
		code, msg, derr := decodeError(f.Payload)
		if derr != nil {
			return nil, derr
		}
		return nil, wrapServerError(code, msg)
	default:
		return nil, fmt.Errorf("dbms: unexpected frame 0x%04x", f.Type)
	}
}

func (c *nativeConn) exec(sql string, args []any) (*client.Result, error) {
	m, err := marshalExec(sql, args)
	if err != nil {
		return nil, err
	}
	f, err := c.roundTrip(msgExec, m.encode())
	if err != nil {
		return nil, err
	}
	return decodeExecReply(f)
}

// Exec implements client.Conn.
func (c *nativeConn) Exec(sql string, args ...any) (*client.Result, error) {
	return c.exec(sql, args)
}

// Query implements client.Conn.
func (c *nativeConn) Query(sql string, args ...any) (*client.Result, error) {
	return c.exec(sql, args)
}

// ExecBatch implements client.BatchConn: the whole statement list
// travels in one msgExecBatch frame and comes back in one
// msgBatchResult frame — a single wire round trip however many
// statements the batch carries.
func (c *nativeConn) ExecBatch(atomic bool, stmts []client.Statement) ([]*client.Result, error) {
	bm := batchMsg{Atomic: atomic, Stmts: make([]execMsg, len(stmts))}
	for i, st := range stmts {
		m, err := marshalExec(st.SQL, st.Args)
		if err != nil {
			return nil, fmt.Errorf("dbms: batch statement %d: %w", i+1, err)
		}
		bm.Stmts[i] = m
	}
	f, err := c.roundTrip(msgExecBatch, bm.encode())
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case msgBatchResult:
		br, err := decodeBatchResult(f.Payload)
		if err != nil {
			return nil, err
		}
		if br.ErrIndex >= 0 {
			return nil, fmt.Errorf("dbms: batch statement %d: %w",
				br.ErrIndex+1, wrapServerError(br.ErrCode, br.ErrMsg))
		}
		if br.ErrCode != 0 {
			// Batch-level failure (e.g. the wrapping COMMIT): no
			// statement index to point at.
			return nil, wrapServerError(br.ErrCode, br.ErrMsg)
		}
		out := make([]*client.Result, len(br.Results))
		for i, r := range br.Results {
			out[i] = &client.Result{Cols: r.Cols, Rows: r.Rows, Affected: r.Affected}
		}
		return out, nil
	case msgError:
		code, msg, derr := decodeError(f.Payload)
		if derr != nil {
			return nil, derr
		}
		return nil, wrapServerError(code, msg)
	default:
		return nil, fmt.Errorf("dbms: unexpected frame 0x%04x", f.Type)
	}
}

// Prepare implements client.StmtConn: the statement is parsed (and its
// plan skeleton cached) once on the server; each Exec of the returned
// handle ships only the handle id and arguments in one msgExecStmt
// round trip. Requires the negotiated FeaturePreparedStatements
// capability; v1 sessions get client.ErrNotSupported without any I/O.
func (c *nativeConn) Prepare(sql string) (client.ConnStmt, error) {
	if c.caps&CapPreparedStatements == 0 {
		return nil, fmt.Errorf("%w: remote prepared statements (session protocol %d)",
			client.ErrNotSupported, c.proto)
	}
	f, err := c.roundTrip(msgPrepare, prepareMsg{SQL: sql}.encode())
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case msgPrepareOK:
		ok, derr := decodePrepareOK(f.Payload)
		if derr != nil {
			return nil, derr
		}
		return &nativeStmt{c: c, handle: ok.Handle, sql: sql}, nil
	case msgError:
		code, msg, derr := decodeError(f.Payload)
		if derr != nil {
			return nil, derr
		}
		return nil, wrapServerError(code, msg)
	default:
		return nil, fmt.Errorf("dbms: unexpected prepare reply 0x%04x", f.Type)
	}
}

// nativeStmt is one server-side prepared handle bound to its
// connection. It dies with the connection; Close releases it eagerly.
type nativeStmt struct {
	c      *nativeConn
	handle uint64
	sql    string
	closed bool
}

// Exec implements client.ConnStmt.
func (st *nativeStmt) Exec(args ...any) (*client.Result, error) {
	if st.closed {
		return nil, fmt.Errorf("dbms: prepared statement %q already closed", st.sql)
	}
	m, err := marshalExec(st.sql, args)
	if err != nil {
		return nil, err
	}
	f, err := st.c.roundTrip(msgExecStmt,
		execStmtMsg{Handle: st.handle, Named: m.Named, Positional: m.Positional}.encode())
	if err != nil {
		return nil, err
	}
	return decodeExecReply(f)
}

// Query implements client.ConnStmt.
func (st *nativeStmt) Query(args ...any) (*client.Result, error) { return st.Exec(args...) }

// Close implements client.ConnStmt: releases the server-side handle.
// Closing a handle on an already-dead connection succeeds (the server
// swept the whole table on disconnect).
func (st *nativeStmt) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	f, err := st.c.roundTrip(msgCloseStmt, closeStmtMsg{Handle: st.handle}.encode())
	if err != nil {
		if errors.Is(err, client.ErrClosed) {
			return nil // disconnect already released every handle
		}
		return err
	}
	if f.Type != msgCloseStmtOK {
		return fmt.Errorf("dbms: unexpected close-stmt reply 0x%04x", f.Type)
	}
	return nil
}

// TableVersions implements client.TableVersionConn: one msgTableVersions
// round trip reporting the mutation counter of each named table — the
// wire form of the generation counters metadata caches validate
// against. Requires the negotiated FeatureTableVersions capability.
func (c *nativeConn) TableVersions(names ...string) ([]uint64, error) {
	if c.caps&CapTableVersions == 0 {
		return nil, fmt.Errorf("%w: table-version probes (session protocol %d)",
			client.ErrNotSupported, c.proto)
	}
	f, err := c.roundTrip(msgTableVersions, tableVersionsMsg{Names: names}.encode())
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case msgTableVersionsOK:
		ok, derr := decodeTableVersionsOK(f.Payload)
		if derr != nil {
			return nil, derr
		}
		if len(ok.Versions) != len(names) {
			return nil, fmt.Errorf("dbms: table-versions reply has %d entries for %d names",
				len(ok.Versions), len(names))
		}
		return ok.Versions, nil
	case msgError:
		code, msg, derr := decodeError(f.Payload)
		if derr != nil {
			return nil, derr
		}
		return nil, wrapServerError(code, msg)
	default:
		return nil, fmt.Errorf("dbms: unexpected table-versions reply 0x%04x", f.Type)
	}
}

// Begin implements client.Conn.
func (c *nativeConn) Begin() error {
	if _, err := c.exec("BEGIN", nil); err != nil {
		return err
	}
	c.mu.Lock()
	c.inTx = true
	c.mu.Unlock()
	return nil
}

// Commit implements client.Conn.
func (c *nativeConn) Commit() error {
	if _, err := c.exec("COMMIT", nil); err != nil {
		return err
	}
	c.mu.Lock()
	c.inTx = false
	c.mu.Unlock()
	return nil
}

// Rollback implements client.Conn.
func (c *nativeConn) Rollback() error {
	if _, err := c.exec("ROLLBACK", nil); err != nil {
		return err
	}
	c.mu.Lock()
	c.inTx = false
	c.mu.Unlock()
	return nil
}

// InTx implements client.Conn.
func (c *nativeConn) InTx() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inTx
}

// Ping implements client.Conn.
func (c *nativeConn) Ping() error {
	f, err := c.roundTrip(msgPing, nil)
	if err != nil {
		return err
	}
	if f.Type != msgPong {
		return fmt.Errorf("dbms: unexpected ping reply 0x%04x", f.Type)
	}
	return nil
}

// Close implements client.Conn.
func (c *nativeConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// ImageFactory returns the driverimg factory for DriverKind: it builds a
// NativeDriver whose protocol version and build version come from the
// image manifest, wrapped with manifest semantics (URL pinning, option
// defaults). Register it on a Runtime to make DBMS drivers loadable:
//
//	rt.Register(dbms.DriverKind, dbms.ImageFactory())
func ImageFactory() driverimg.Factory {
	return func(img *driverimg.Image) (client.Driver, error) {
		inner := NewNativeDriver(img.Manifest.Version, img.Manifest.ProtocolVersion)
		return driverimg.WrapDriver(inner, img), nil
	}
}
