package dbms

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"testing"

	"repro/internal/sqlmini"
)

// Golden-frame fixtures: the byte-exact encoding of every protocol
// message. These pin the wire format itself — a change that re-orders
// fields, resizes an integer, or breaks the named-argument sort fails
// here in `make check` instead of in a live deployment talking to an
// already-shipped driver. When a frame legitimately grows, append
// trailing fields (old decoders ignore trailing bytes; see the hello
// extension) and update the fixture.

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad fixture hex: %v", err)
	}
	return b
}

func checkGolden(t *testing.T, name string, got []byte, wantHex string) {
	t.Helper()
	want := mustHex(t, wantHex)
	if !bytes.Equal(got, want) {
		t.Fatalf("%s encoding drifted from the golden fixture:\n got  %s\n want %s",
			name, hex.EncodeToString(got), wantHex)
	}
}

func goldenHello() helloMsg {
	return helloMsg{
		ProtocolVersion: 2, Database: "prod", User: "svc", Password: "pw",
		ClientInfo: "dbms-native 1.0.0 (proto 2)", MinProtocolVersion: 1,
		Capabilities: CapPreparedStatements | CapTableVersions | CapAtomicBatch,
	}
}

func TestGoldenHello(t *testing.T) {
	m := goldenHello()
	enc := m.encode()
	checkGolden(t, "hello", enc,
		"00020000000470726f64000000037376630000000270770000001b64626d732d6e617469766520312e302e30202870726f746f203229000100000007")
	got, err := decodeHello(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip: %+v != %+v", got, m)
	}
}

// TestGoldenHelloLegacyForm: a v1 (5-field) hello — what an
// already-shipped driver emits — still decodes, defaulting the
// extension to an exact version pin with no capabilities.
func TestGoldenHelloLegacyForm(t *testing.T) {
	legacy := mustHex(t,
		// ProtocolVersion=1, "prod", "svc", "pw", "legacy 1.0"
		"00010000000470726f6400000003737663000000027077"+
			"0000000a6c656761637920312e30")
	got, err := decodeHello(legacy)
	if err != nil {
		t.Fatal(err)
	}
	want := helloMsg{ProtocolVersion: 1, Database: "prod", User: "svc",
		Password: "pw", ClientInfo: "legacy 1.0",
		MinProtocolVersion: 1, Capabilities: 0}
	if got != want {
		t.Fatalf("legacy hello decoded as %+v, want %+v", got, want)
	}
}

func TestGoldenHelloOK(t *testing.T) {
	m := helloOKMsg{ServerName: "legacy-db", ServerVersion: "1.0.0",
		ProtocolVersion: 2, SessionID: 7, Capabilities: 7}
	enc := m.encode()
	checkGolden(t, "helloOK", enc,
		"000000096c65676163792d646200000005312e302e300002000000000000000700000007")
	got, err := decodeHelloOK(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip: %+v != %+v", got, m)
	}
}

func TestGoldenExecNamed(t *testing.T) {
	m := execMsg{
		SQL: "SELECT v FROM t WHERE id = $id AND x = $x",
		Named: map[string]sqlmini.Value{
			"x":  sqlmini.NewString("a"),
			"id": sqlmini.NewInt(42),
		},
	}
	enc := m.encode()
	// Named keys encode in sorted order ("id" before "x") — the fixture
	// pins the determinism the map would otherwise not give.
	checkGolden(t, "exec(named)", enc,
		"0000002953454c45435420762046524f4d2074205748455245206964203d2024696420414e442078203d2024780000000200000002696403000000000000002a000000017805000000016100000000")
	got, err := decodeExec(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.SQL != m.SQL || len(got.Named) != 2 ||
		got.Named["id"].Int() != 42 || got.Named["x"].Str() != "a" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestGoldenExecPositional(t *testing.T) {
	m := execMsg{
		SQL:        "SELECT v FROM t WHERE id = ?",
		Positional: []sqlmini.Value{sqlmini.NewInt(7), sqlmini.NewBool(true)},
	}
	enc := m.encode()
	checkGolden(t, "exec(positional)", enc,
		"0000001c53454c45435420762046524f4d2074205748455245206964203d203f0000000000000002030000000000000007080000000000000001")
	got, err := decodeExec(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.SQL != m.SQL || len(got.Positional) != 2 ||
		got.Positional[0].Int() != 7 || !got.Positional[1].Bool() {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestGoldenResult(t *testing.T) {
	r := &sqlmini.Result{
		Cols:     []string{"id", "name"},
		Rows:     [][]sqlmini.Value{{sqlmini.NewInt(1), sqlmini.NewString("widget")}},
		Affected: 0,
	}
	enc := encodeResult(r)
	checkGolden(t, "result", enc,
		"00000002000000026964000000046e616d65000000010000000203000000000000000105000000067769646765740000000000000000")
	got, err := decodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Cols, r.Cols) || got.Affected != 0 ||
		len(got.Rows) != 1 || got.Rows[0][0].Int() != 1 || got.Rows[0][1].Str() != "widget" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestGoldenBatch(t *testing.T) {
	m := batchMsg{Atomic: true, Stmts: []execMsg{
		{SQL: "INSERT INTO t (id) VALUES (?)", Positional: []sqlmini.Value{sqlmini.NewInt(1)}},
		{SQL: "DELETE FROM t WHERE id = ?", Positional: []sqlmini.Value{sqlmini.NewInt(2)}},
	}}
	enc := m.encode()
	checkGolden(t, "batch", enc,
		"0100000002000000320000001d494e5345525420494e544f207420286964292056414c55455320283f2900000000000000010300000000000000010000002f0000001a44454c4554452046524f4d2074205748455245206964203d203f0000000000000001030000000000000002")
	got, err := decodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Atomic || len(got.Stmts) != 2 || got.Stmts[1].SQL != m.Stmts[1].SQL {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestGoldenBatchResult(t *testing.T) {
	m := batchResultMsg{
		Results:  []*sqlmini.Result{{Cols: []string{"n"}, Rows: [][]sqlmini.Value{{sqlmini.NewInt(3)}}, Affected: 1}},
		ErrIndex: -1,
	}
	enc := m.encode()
	checkGolden(t, "batchResult", enc,
		"000000010000002200000001000000016e00000001000000010300000000000000030000000000000001ffffffff000000000000")
	got, err := decodeBatchResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 || got.ErrIndex != -1 || got.ErrCode != 0 ||
		got.Results[0].Rows[0][0].Int() != 3 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestGoldenError(t *testing.T) {
	enc := encodeError(codeQueryError, "boom")
	checkGolden(t, "error", enc, "000400000004626f6f6d")
	code, msg, err := decodeError(enc)
	if err != nil || code != codeQueryError || msg != "boom" {
		t.Fatalf("round trip: %d %q %v", code, msg, err)
	}
}

func TestGoldenPrepare(t *testing.T) {
	m := prepareMsg{SQL: "SELECT 1"}
	enc := m.encode()
	checkGolden(t, "prepare", enc, "0000000853454c4543542031")
	got, err := decodePrepare(enc)
	if err != nil || got != m {
		t.Fatalf("round trip: %+v %v", got, err)
	}
}

func TestGoldenPrepareOK(t *testing.T) {
	m := prepareOKMsg{Handle: 3, Mutating: true}
	enc := m.encode()
	checkGolden(t, "prepareOK", enc, "000000000000000301")
	got, err := decodePrepareOK(enc)
	if err != nil || got != m {
		t.Fatalf("round trip: %+v %v", got, err)
	}
}

func TestGoldenExecStmt(t *testing.T) {
	m := execStmtMsg{Handle: 3, Named: map[string]sqlmini.Value{"id": sqlmini.NewInt(1)}}
	enc := m.encode()
	checkGolden(t, "execStmt", enc,
		"00000000000000030000000100000002696403000000000000000100000000")
	got, err := decodeExecStmt(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Handle != 3 || len(got.Named) != 1 || got.Named["id"].Int() != 1 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestGoldenCloseStmt(t *testing.T) {
	m := closeStmtMsg{Handle: 3}
	enc := m.encode()
	checkGolden(t, "closeStmt", enc, "0000000000000003")
	got, err := decodeCloseStmt(enc)
	if err != nil || got != m {
		t.Fatalf("round trip: %+v %v", got, err)
	}
}

func TestGoldenTableVersions(t *testing.T) {
	m := tableVersionsMsg{Names: []string{"drivers", "driver_permission"}}
	enc := m.encode()
	checkGolden(t, "tableVersions", enc,
		"000000020000000764726976657273000000116472697665725f7065726d697373696f6e")
	got, err := decodeTableVersions(enc)
	if err != nil || !reflect.DeepEqual(got.Names, m.Names) {
		t.Fatalf("round trip: %+v %v", got, err)
	}
}

func TestGoldenTableVersionsOK(t *testing.T) {
	m := tableVersionsOKMsg{Versions: []uint64{5, 9}}
	enc := m.encode()
	checkGolden(t, "tableVersionsOK", enc,
		"0000000200000000000000050000000000000009")
	got, err := decodeTableVersionsOK(enc)
	if err != nil || !reflect.DeepEqual(got.Versions, m.Versions) {
		t.Fatalf("round trip: %+v %v", got, err)
	}
}

// TestMalformedCountsRejected: decoders must validate wire counts
// against the remaining payload BEFORE sizing allocations — a tiny
// frame claiming 2^32-1 entries errors instead of OOMing the process.
func TestMalformedCountsRejected(t *testing.T) {
	huge := "ffffffff"
	cases := map[string]func([]byte) error{
		// exec with a huge named-arg count and no entries.
		"exec named":      func(b []byte) error { _, err := decodeExec(b); return err },
		"execStmt named":  func(b []byte) error { _, err := decodeExecStmt(b); return err },
		"result cols":     func(b []byte) error { _, err := decodeResult(b); return err },
		"tableVersionsOK": func(b []byte) error { _, err := decodeTableVersionsOK(b); return err },
	}
	payloads := map[string]string{
		"exec named":      "00000000" + huge,         // empty SQL, named count max
		"execStmt named":  "0000000000000001" + huge, // handle 1, named count max
		"result cols":     "0000000000000001" + huge, // 0 cols, 1 row claiming max cells
		"tableVersionsOK": huge,                      // max versions, no data
	}
	for name, decode := range cases {
		if err := decode(mustHex(t, payloads[name])); err == nil {
			t.Errorf("%s: malformed count must be rejected", name)
		}
	}
}

// TestGoldenFrameTypes pins the frame-type and error-code NUMBERS: a
// renumbering (say, an inserted iota) would break every shipped peer
// while still passing encode/decode round trips.
func TestGoldenFrameTypes(t *testing.T) {
	types := map[string][2]uint16{
		"hello":           {msgHello, 0x0101},
		"helloOK":         {msgHelloOK, 0x0102},
		"exec":            {msgExec, 0x0103},
		"result":          {msgResult, 0x0104},
		"ping":            {msgPing, 0x0105},
		"pong":            {msgPong, 0x0106},
		"execBatch":       {msgExecBatch, 0x0107},
		"batchResult":     {msgBatchResult, 0x0108},
		"prepare":         {msgPrepare, 0x0109},
		"prepareOK":       {msgPrepareOK, 0x010A},
		"execStmt":        {msgExecStmt, 0x010B},
		"closeStmt":       {msgCloseStmt, 0x010C},
		"closeStmtOK":     {msgCloseStmtOK, 0x010D},
		"tableVersions":   {msgTableVersions, 0x010E},
		"tableVersionsOK": {msgTableVersionsOK, 0x010F},
		"error":           {msgError, 0x01FF},
	}
	for name, v := range types {
		if v[0] != v[1] {
			t.Errorf("frame type %s = 0x%04x, golden 0x%04x", name, v[0], v[1])
		}
	}
	codes := map[string][2]uint16{
		"protocolMismatch": {codeProtocolMismatch, 1},
		"authFailed":       {codeAuthFailed, 2},
		"noDatabase":       {codeNoDatabase, 3},
		"queryError":       {codeQueryError, 4},
		"readOnly":         {codeReadOnly, 5},
		"shutdown":         {codeShutdown, 6},
		"badHandle":        {codeBadHandle, 7},
		"notSupported":     {codeNotSupported, 8},
	}
	for name, v := range codes {
		if v[0] != v[1] {
			t.Errorf("error code %s = %d, golden %d", name, v[0], v[1])
		}
	}
	caps := map[string][2]uint32{
		"preparedStatements": {CapPreparedStatements, 1},
		"tableVersions":      {CapTableVersions, 2},
		"atomicBatch":        {CapAtomicBatch, 4},
	}
	for name, v := range caps {
		if v[0] != v[1] {
			t.Errorf("capability %s = %d, golden %d", name, v[0], v[1])
		}
	}
}
