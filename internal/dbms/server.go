package dbms

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dbver"
	"repro/internal/faultnet"
	"repro/internal/sqlmini"
	"repro/internal/wire"
)

// Server is one simulated DBMS instance: a TCP endpoint serving one or
// more named sqlmini databases. Servers are restartable (Stop then Start)
// to model maintenance windows (paper §5.2).
type Server struct {
	name          string
	engineVersion dbver.Version
	protoMin      uint16 // lowest wire-protocol version accepted
	protoMax      uint16 // highest wire-protocol version spoken
	users         map[string]string
	logf          func(format string, args ...any)

	handshakeTimeout time.Duration // first-frame deadline per connection
	writeTimeout     time.Duration // per-frame send deadline

	mu        sync.Mutex
	dbs       map[string]*sqlmini.DB
	readOnly  bool
	replicas  []*Server
	ln        net.Listener
	stopped   bool
	sessions  map[*session]struct{}
	nextSID   uint64
	userConns map[string]int

	wg sync.WaitGroup

	// counters for benchmarks and experiments
	queries       atomic.Int64
	batches       atomic.Int64
	prepares      atomic.Int64
	stmtExecs     atomic.Int64
	versionProbes atomic.Int64
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithEngineVersion sets the reported engine version.
func WithEngineVersion(v dbver.Version) ServerOption {
	return func(s *Server) { s.engineVersion = v }
}

// WithProtocolVersion pins the engine to exactly one wire-protocol
// version: clients whose offered range does not include it are rejected
// at connect time — the paper's step-5 incompatibility. (The default
// server instead speaks the [ProtocolV1, ProtocolV2] range and
// negotiates down for old drivers.)
func WithProtocolVersion(v uint16) ServerOption {
	return func(s *Server) { s.protoMin, s.protoMax = v, v }
}

// WithProtocolRange makes the engine accept any client whose offered
// version range overlaps [min, max], negotiating the highest version
// both sides share.
func WithProtocolRange(min, max uint16) ServerOption {
	return func(s *Server) {
		s.protoMin, s.protoMax = min, max
		if s.protoMax < s.protoMin {
			s.protoMax = s.protoMin
		}
	}
}

// WithUser adds an authentication entry.
func WithUser(user, password string) ServerOption {
	return func(s *Server) { s.users[user] = password }
}

// WithReadOnly marks the server as a read-only replica: client mutations
// are rejected, replicated statements still apply.
func WithReadOnly() ServerOption {
	return func(s *Server) { s.readOnly = true }
}

// WithLogger routes server diagnostics; default is silent.
func WithLogger(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// WithHandshakeTimeout bounds how long an accepted connection may take
// to deliver its hello; default faultnet.DefaultHandshakeTimeout.
func WithHandshakeTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.handshakeTimeout = d }
}

// WithWriteTimeout bounds every frame the server sends, so a client
// that stops reading mid-result cannot wedge its session goroutine;
// default faultnet.DefaultWriteTimeout.
func WithWriteTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.writeTimeout = d }
}

// NewServer creates a DBMS instance named name. At least one database
// must be attached with AddDatabase before clients can connect to it.
func NewServer(name string, opts ...ServerOption) *Server {
	s := &Server{
		name:             name,
		engineVersion:    dbver.V(1, 0, 0),
		protoMin:         ProtocolV1,
		protoMax:         ProtocolV2,
		handshakeTimeout: faultnet.DefaultHandshakeTimeout,
		writeTimeout:     faultnet.DefaultWriteTimeout,
		users:         map[string]string{},
		dbs:           map[string]*sqlmini.DB{},
		sessions:      map[*session]struct{}{},
		userConns:     map[string]int{},
		logf:          func(string, ...any) {},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name returns the server name.
func (s *Server) Name() string { return s.name }

// EngineVersion returns the engine version.
func (s *Server) EngineVersion() dbver.Version { return s.engineVersion }

// ProtocolVersion returns the highest wire-protocol version this engine
// speaks (see ProtocolRange for the full accepted range).
func (s *Server) ProtocolVersion() uint16 { return s.protoMax }

// ProtocolRange returns the accepted wire-protocol version range.
func (s *Server) ProtocolRange() (min, max uint16) { return s.protoMin, s.protoMax }

// AddDatabase attaches db under the given name.
func (s *Server) AddDatabase(name string, db *sqlmini.DB) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dbs[name] = db
}

// Database returns the named database, or nil.
func (s *Server) Database(name string) *sqlmini.DB {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dbs[name]
}

// Databases lists attached database names.
func (s *Server) Databases() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		out = append(out, n)
	}
	return out
}

// AttachReplica registers r to receive every mutating statement applied
// on this server (statement-based replication). Initial state transfers
// via Snapshot/Restore; see SyncReplica.
func (s *Server) AttachReplica(r *Server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replicas = append(s.replicas, r)
}

// DetachReplica removes r from the replication fan-out.
func (s *Server) DetachReplica(r *Server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, x := range s.replicas {
		if x == r {
			s.replicas = append(s.replicas[:i], s.replicas[i+1:]...)
			return
		}
	}
}

// SyncReplica copies every database's current state into r.
func (s *Server) SyncReplica(r *Server) error {
	s.mu.Lock()
	names := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		names = append(names, n)
	}
	s.mu.Unlock()
	for _, n := range names {
		src := s.Database(n)
		dst := r.Database(n)
		if dst == nil {
			dst = sqlmini.NewDB()
			r.AddDatabase(n, dst)
		}
		if err := dst.Restore(src.Snapshot()); err != nil {
			return fmt.Errorf("dbms: sync replica %s/%s: %w", r.name, n, err)
		}
	}
	return nil
}

// Start listens on addr ("127.0.0.1:0" picks a free port) and serves
// until Stop.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dbms: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		_ = ln.Close()
		return fmt.Errorf("dbms: server %s already started", s.name)
	}
	s.ln = ln
	s.stopped = false
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the listen address, or "" when stopped.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(nc)
		}()
	}
}

// Stop closes the listener and force-disconnects every session, then
// waits for all connection goroutines to exit. Databases and their
// contents survive; Start may be called again (maintenance window).
func (s *Server) Stop() {
	s.mu.Lock()
	if s.ln != nil {
		_ = s.ln.Close()
		s.ln = nil
	}
	s.stopped = true
	for sess := range s.sessions {
		_ = sess.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	s.sessions = map[*session]struct{}{}
	s.userConns = map[string]int{}
	s.mu.Unlock()
}

// ActiveSessions reports the number of connected client sessions.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// UserHasSession reports whether any live session authenticated as user —
// the in-engine failure detector for the license server (paper §5.4.2:
// "If the Drivolution Server is tightly integrated with the database, it
// can check if any connection with the client is still active").
func (s *Server) UserHasSession(user string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.userConns[user] > 0
}

// QueriesServed reports the total statements executed.
func (s *Server) QueriesServed() int64 { return s.queries.Load() }

// BatchesServed reports the number of msgExecBatch frames handled —
// each one a single wire round trip regardless of statement count.
func (s *Server) BatchesServed() int64 { return s.batches.Load() }

// PreparesServed reports msgPrepare frames handled — each one a
// server-side parse that every subsequent msgExecStmt of the handle
// skips.
func (s *Server) PreparesServed() int64 { return s.prepares.Load() }

// StmtExecsServed reports prepared-handle executions (msgExecStmt).
// These also count in QueriesServed: they are statements executed,
// just without the per-call parse.
func (s *Server) StmtExecsServed() int64 { return s.stmtExecs.Load() }

// VersionProbesServed reports msgTableVersions probes. Probes read
// in-memory counters and execute no SQL, so they do NOT count in
// QueriesServed.
func (s *Server) VersionProbesServed() int64 { return s.versionProbes.Load() }

// DisconnectUser force-closes every session authenticated as user and
// returns how many were closed — the paper's §3.2 option of enforcing
// connection revocation "in the database server, if the Drivolution
// Server is tightly integrated with the database engine".
func (s *Server) DisconnectUser(user string) int {
	s.mu.Lock()
	var victims []*session
	for sess := range s.sessions {
		if sess.user == user {
			victims = append(victims, sess)
		}
	}
	s.mu.Unlock()
	for _, sess := range victims {
		_ = sess.conn.Close()
	}
	return len(victims)
}

type session struct {
	id    uint64
	conn  *wire.Conn
	user  string
	db    string
	sql   *sqlmini.Session
	proto uint16 // negotiated protocol version
	caps  uint32 // negotiated capability mask

	// stmts is the session's prepared-handle table: server-side cached
	// sqlmini.Prepared keyed by handle id. Only the session's serve
	// goroutine touches it, it is bounded at maxSessionStmts, and it is
	// swept wholesale on disconnect (serveConn return drops the map and
	// every handle with it).
	stmts    map[uint64]*sessStmt
	nextStmt uint64
}

// sessStmt is one server-side prepared handle: the reusable engine
// handle plus the statement's text (replication ships SQL) and its
// mutation classification (read-only gate, replication trigger).
type sessStmt struct {
	p        *sqlmini.Prepared
	sql      string
	mutating bool
}

// maxSessionStmts bounds one session's prepared-handle table. The
// statement vocabulary of a real client is small (the Drivolution
// server's fits in a few dozen); the bound exists so a leaky client
// cannot grow server memory without limit.
const maxSessionStmts = 256

// negotiateVersion intersects the client's offered version range with
// the server's: the highest version inside both ranges wins.
func negotiateVersion(cMin, cMax, sMin, sMax uint16) (uint16, bool) {
	neg := cMax
	if sMax < neg {
		neg = sMax
	}
	lo := cMin
	if sMin > lo {
		lo = sMin
	}
	if neg < lo {
		return 0, false
	}
	return neg, true
}

func (s *Server) serveConn(nc net.Conn) {
	conn := wire.NewConn(nc)
	defer conn.Close()
	conn.SetWriteTimeout(s.writeTimeout)

	// Handshake with a deadline so stalled dialers can't pin goroutines.
	f, err := conn.RecvTimeout(s.handshakeTimeout)
	if err != nil {
		return
	}
	if f.Type != msgHello {
		_ = conn.Send(msgError, encodeError(codeProtocolMismatch, "expected hello"))
		return
	}
	hello, err := decodeHello(f.Payload)
	if err != nil {
		_ = conn.Send(msgError, encodeError(codeProtocolMismatch, "malformed hello"))
		return
	}
	cMin, cMax := hello.MinProtocolVersion, hello.ProtocolVersion
	if cMin > cMax {
		cMin = cMax // defensive: a confused client still gets a sane range
	}
	neg, ok := negotiateVersion(cMin, cMax, s.protoMin, s.protoMax)
	if !ok {
		_ = conn.Send(msgError, encodeError(codeProtocolMismatch,
			fmt.Sprintf("server %s speaks protocols %d..%d, driver offered %d..%d (%s)",
				s.name, s.protoMin, s.protoMax, cMin, cMax, hello.ClientInfo)))
		return
	}
	caps := capsForVersion(neg) & hello.Capabilities
	if pw, ok := s.users[hello.User]; !ok || pw != hello.Password {
		_ = conn.Send(msgError, encodeError(codeAuthFailed,
			fmt.Sprintf("authentication failed for user %q", hello.User)))
		return
	}
	db := s.Database(hello.Database)
	if db == nil {
		_ = conn.Send(msgError, encodeError(codeNoDatabase,
			fmt.Sprintf("no database %q on server %s", hello.Database, s.name)))
		return
	}

	sess := &session{conn: conn, user: hello.User, db: hello.Database,
		sql: db.NewSession(), proto: neg, caps: caps}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		_ = conn.Send(msgError, encodeError(codeShutdown, "server stopping"))
		return
	}
	s.nextSID++
	sess.id = s.nextSID
	s.sessions[sess] = struct{}{}
	s.userConns[hello.User]++
	s.mu.Unlock()

	defer func() {
		sess.sql.Close()
		s.mu.Lock()
		delete(s.sessions, sess)
		s.userConns[sess.user]--
		s.mu.Unlock()
	}()

	if err := conn.Send(msgHelloOK, helloOKMsg{
		ServerName:      s.name,
		ServerVersion:   s.engineVersion.String(),
		ProtocolVersion: sess.proto,
		SessionID:       sess.id,
		Capabilities:    sess.caps,
	}.encode()); err != nil {
		return
	}

	for {
		f, err := conn.Recv()
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("dbms %s: session %d read: %v", s.name, sess.id, err)
			}
			return
		}
		switch f.Type {
		case msgPing:
			if err := conn.Send(msgPong, nil); err != nil {
				return
			}
		case msgExec:
			if err := s.handleExec(sess, f.Payload); err != nil {
				return
			}
		case msgExecBatch:
			if err := s.handleExecBatch(sess, f.Payload); err != nil {
				return
			}
		case msgPrepare:
			if err := s.handlePrepare(sess, f.Payload); err != nil {
				return
			}
		case msgExecStmt:
			if err := s.handleExecStmt(sess, f.Payload); err != nil {
				return
			}
		case msgCloseStmt:
			if err := s.handleCloseStmt(sess, f.Payload); err != nil {
				return
			}
		case msgTableVersions:
			if err := s.handleTableVersions(sess, f.Payload); err != nil {
				return
			}
		default:
			_ = conn.Send(msgError, encodeError(codeQueryError,
				fmt.Sprintf("unexpected frame type 0x%04x", f.Type)))
		}
	}
}

func (s *Server) handleExec(sess *session, payload []byte) error {
	m, err := decodeExec(payload)
	if err != nil {
		return sess.conn.Send(msgError, encodeError(codeQueryError, "malformed exec: "+err.Error()))
	}
	s.queries.Add(1)

	mutating, parseErr := isMutating(m.SQL)
	if parseErr != nil {
		return sess.conn.Send(msgError, encodeError(codeQueryError, parseErr.Error()))
	}
	if mutating && s.isReadOnly() {
		return sess.conn.Send(msgError, encodeError(codeReadOnly,
			fmt.Sprintf("server %s is a read-only replica", s.name)))
	}

	res, err := execOn(sess.sql, m)
	if err != nil {
		return sess.conn.Send(msgError, encodeError(codeQueryError, err.Error()))
	}
	if mutating {
		s.replicate(sess.db, m)
	}
	return sess.conn.Send(msgResult, encodeResult(res))
}

// handleExecBatch executes one msgExecBatch frame: N statements on the
// session, one reply frame. The whole frame is validated up front
// (parse + read-only gate, and for atomic batches the no-tx-control /
// no-DDL rules), so an invalid batch is rejected before ANY statement
// executes — the one observable difference from sending the statements
// frame by frame. Atomic batches run through the engine's
// ExecBatchAtomic under one lock hold — atomic AND isolated, the whole
// frame applies or none of it — replicate only on success, and are
// refused while the session already holds a client transaction (the
// rollback promise could not be honored). Non-atomic batches may carry
// their own BEGIN/COMMIT/ROLLBACK statements and otherwise behave like
// per-frame statements: an applied prefix before a mid-batch execution
// failure persists and replicates.
func (s *Server) handleExecBatch(sess *session, payload []byte) error {
	bm, err := decodeBatch(payload)
	if err != nil {
		return sess.conn.Send(msgError, encodeError(codeQueryError, "malformed batch: "+err.Error()))
	}
	s.queries.Add(int64(len(bm.Stmts)))
	s.batches.Add(1)

	reply := batchResultMsg{ErrIndex: -1}
	fail := func(i int, code uint16, msg string) error {
		reply.ErrIndex, reply.ErrCode, reply.ErrMsg = int32(i), code, msg
		return sess.conn.Send(msgBatchResult, reply.encode())
	}

	muts := make([]bool, len(bm.Stmts))
	for i, m := range bm.Stmts {
		st, perr := sqlmini.Parse(m.SQL)
		if perr != nil {
			return fail(i, codeQueryError, perr.Error())
		}
		if bm.Atomic {
			switch st.(type) {
			case *sqlmini.BeginStmt, *sqlmini.CommitStmt, *sqlmini.RollbackStmt:
				return fail(i, codeQueryError, "transaction control inside an atomic batch")
			case *sqlmini.CreateTableStmt, *sqlmini.CreateIndexStmt, *sqlmini.DropTableStmt:
				// DDL never reaches the undo log, so the wrapping
				// ROLLBACK could not revert it — same contract as
				// LocalStore's ExecBatchAtomic.
				return fail(i, codeQueryError, "DDL cannot roll back and is not batchable atomically")
			}
		}
		muts[i] = isMutatingStmt(st)
		if muts[i] && s.isReadOnly() {
			return fail(i, codeReadOnly, fmt.Sprintf("server %s is a read-only replica", s.name))
		}
	}

	if bm.Atomic {
		if sess.sql.InTx() {
			// Inside a client transaction the server cannot honor the
			// atomic-batch contract: a mid-batch failure could not roll
			// back the prefix without clobbering the client's
			// transaction, and replication would outrun the outer
			// commit. Refuse rather than silently weaken the promise.
			return fail(-1, codeQueryError, "atomic batch inside an open transaction")
		}
		// Execute through the engine's atomic batch — ONE lock hold
		// for the whole list, so the unit is atomic AND isolated: a
		// mid-batch failure reverts exactly this batch's effects (a
		// session-level BEGIN/ROLLBACK wrapper would release the lock
		// between statements, and its rollback could clobber an
		// interleaved session's committed write).
		db := s.Database(sess.db)
		bs := make([]sqlmini.BatchStmt, len(bm.Stmts))
		for i, m := range bm.Stmts {
			bs[i] = toBatchStmt(m)
		}
		results, err := db.ExecBatchAtomic(bs)
		if err != nil {
			// The engine error text names the failing statement's
			// position; there is no partial result to report.
			return fail(-1, codeQueryError, err.Error())
		}
		reply.Results = results
		for i, m := range bm.Stmts {
			if muts[i] {
				s.replicate(sess.db, m) // only once the unit applied
			}
		}
		return sess.conn.Send(msgBatchResult, reply.encode())
	}
	for i, m := range bm.Stmts {
		res, execErr := execOn(sess.sql, m)
		if execErr != nil {
			return fail(i, codeQueryError, execErr.Error())
		}
		reply.Results = append(reply.Results, res)
		if muts[i] {
			// Non-atomic batches replicate statement by statement,
			// exactly like the same statements sent one frame at a
			// time — an applied prefix before a mid-batch failure
			// must reach the replicas too.
			s.replicate(sess.db, m)
		}
	}
	return sess.conn.Send(msgBatchResult, reply.encode())
}

// toBatchStmt converts a wire statement to the engine's batch form,
// through the same argument conversion per-frame execution uses.
func toBatchStmt(m execMsg) sqlmini.BatchStmt {
	return sqlmini.BatchStmt{SQL: m.SQL, Args: m.args()}
}

// handlePrepare registers one statement in the session's handle table:
// parsed (and plan-analyzed lazily) once server-side, so every
// msgExecStmt of the handle skips the per-call parse that makes plain
// msgExec re-do the whole statement. Capability-gated: only sessions
// that negotiated CapPreparedStatements may grow server state.
func (s *Server) handlePrepare(sess *session, payload []byte) error {
	if sess.caps&CapPreparedStatements == 0 {
		return sess.conn.Send(msgError, encodeError(codeNotSupported,
			"prepared statements were not negotiated on this session"))
	}
	m, err := decodePrepare(payload)
	if err != nil {
		return sess.conn.Send(msgError, encodeError(codeQueryError, "malformed prepare: "+err.Error()))
	}
	if len(sess.stmts) >= maxSessionStmts {
		return sess.conn.Send(msgError, encodeError(codeQueryError,
			fmt.Sprintf("session already holds %d prepared statements (limit)", maxSessionStmts)))
	}
	mutating, perr := isMutating(m.SQL)
	if perr != nil {
		return sess.conn.Send(msgError, encodeError(codeQueryError, perr.Error()))
	}
	db := s.Database(sess.db)
	if db == nil {
		return sess.conn.Send(msgError, encodeError(codeNoDatabase,
			fmt.Sprintf("database %q was detached", sess.db)))
	}
	p, perr := db.Prepare(m.SQL)
	if perr != nil {
		return sess.conn.Send(msgError, encodeError(codeQueryError, perr.Error()))
	}
	s.prepares.Add(1)
	if sess.stmts == nil {
		sess.stmts = make(map[uint64]*sessStmt)
	}
	sess.nextStmt++
	sess.stmts[sess.nextStmt] = &sessStmt{p: p, sql: m.SQL, mutating: mutating}
	return sess.conn.Send(msgPrepareOK, prepareOKMsg{Handle: sess.nextStmt, Mutating: mutating}.encode())
}

// handleExecStmt executes one prepared handle with this call's
// arguments. Semantics match msgExec of the same SQL exactly: the
// statement joins the session's open transaction if any, the read-only
// gate applies at execution time (the replica flag can flip between
// prepare and exec), mutations replicate by statement text, and the
// reply is msgResult/msgError in the same shapes.
func (s *Server) handleExecStmt(sess *session, payload []byte) error {
	if sess.caps&CapPreparedStatements == 0 {
		return sess.conn.Send(msgError, encodeError(codeNotSupported,
			"prepared statements were not negotiated on this session"))
	}
	m, err := decodeExecStmt(payload)
	if err != nil {
		return sess.conn.Send(msgError, encodeError(codeQueryError, "malformed exec-stmt: "+err.Error()))
	}
	h, ok := sess.stmts[m.Handle]
	if !ok {
		return sess.conn.Send(msgError, encodeError(codeBadHandle,
			fmt.Sprintf("no prepared statement with handle %d on this session", m.Handle)))
	}
	s.queries.Add(1)
	s.stmtExecs.Add(1)
	if h.mutating && s.isReadOnly() {
		return sess.conn.Send(msgError, encodeError(codeReadOnly,
			fmt.Sprintf("server %s is a read-only replica", s.name)))
	}
	res, execErr := sess.sql.ExecPrepared(h.p, wireArgs(m.Named, m.Positional)...)
	if execErr != nil {
		return sess.conn.Send(msgError, encodeError(codeQueryError, execErr.Error()))
	}
	if h.mutating {
		s.replicate(sess.db, execMsg{SQL: h.sql, Named: m.Named, Positional: m.Positional})
	}
	return sess.conn.Send(msgResult, encodeResult(res))
}

// handleCloseStmt drops one handle from the session table. Closing an
// unknown handle succeeds: client caches close fire-and-forget on
// eviction, and a double-close race must not kill the session.
func (s *Server) handleCloseStmt(sess *session, payload []byte) error {
	if sess.caps&CapPreparedStatements == 0 {
		return sess.conn.Send(msgError, encodeError(codeNotSupported,
			"prepared statements were not negotiated on this session"))
	}
	m, err := decodeCloseStmt(payload)
	if err != nil {
		return sess.conn.Send(msgError, encodeError(codeQueryError, "malformed close-stmt: "+err.Error()))
	}
	delete(sess.stmts, m.Handle)
	return sess.conn.Send(msgCloseStmtOK, nil)
}

// handleTableVersions answers a generation probe: the per-table
// mutation counters of the session's database, read from in-memory
// state — no SQL executes, so a cache-validation round trip costs the
// legacy DBMS nothing but a frame.
func (s *Server) handleTableVersions(sess *session, payload []byte) error {
	if sess.caps&CapTableVersions == 0 {
		return sess.conn.Send(msgError, encodeError(codeNotSupported,
			"table-version probes were not negotiated on this session"))
	}
	m, err := decodeTableVersions(payload)
	if err != nil {
		return sess.conn.Send(msgError, encodeError(codeQueryError, "malformed table-versions: "+err.Error()))
	}
	db := s.Database(sess.db)
	if db == nil {
		return sess.conn.Send(msgError, encodeError(codeNoDatabase,
			fmt.Sprintf("database %q was detached", sess.db)))
	}
	s.versionProbes.Add(1)
	reply := tableVersionsOKMsg{Versions: make([]uint64, len(m.Names))}
	for i, name := range m.Names {
		reply.Versions[i] = db.TableVersion(name)
	}
	return sess.conn.Send(msgTableVersionsOK, reply.encode())
}

func (s *Server) isReadOnly() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readOnly
}

// SetReadOnly flips the replica flag at run time (used when promoting a
// slave during failover).
func (s *Server) SetReadOnly(ro bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readOnly = ro
}

// wireArgs converts wire parameters to the engine's argument form —
// the single conversion exec, batch, and prepared-handle execution all
// go through.
func wireArgs(named map[string]sqlmini.Value, positional []sqlmini.Value) []any {
	if len(named) > 0 {
		args := sqlmini.Args{}
		for k, v := range named {
			args[k] = v
		}
		return []any{args}
	}
	args := make([]any, len(positional))
	for i, v := range positional {
		args[i] = v
	}
	return args
}

func (m execMsg) args() []any { return wireArgs(m.Named, m.Positional) }

func execOn(sess *sqlmini.Session, m execMsg) (*sqlmini.Result, error) {
	return sess.Exec(m.SQL, m.args()...)
}

// replicate ships a mutating statement to every attached replica.
// Statement-based replication applies synchronously in autocommit on the
// replica; explicit-transaction interleavings are out of scope for this
// substrate (documented in DESIGN.md).
func (s *Server) replicate(dbName string, m execMsg) {
	s.mu.Lock()
	replicas := append([]*Server(nil), s.replicas...)
	s.mu.Unlock()
	for _, r := range replicas {
		if err := r.ApplyReplicated(dbName, m); err != nil {
			s.logf("dbms %s: replicate to %s: %v", s.name, r.name, err)
		}
	}
}

// ApplyReplicated applies a statement shipped from a master, bypassing
// the read-only gate.
func (s *Server) ApplyReplicated(dbName string, m execMsg) error {
	db := s.Database(dbName)
	if db == nil {
		return fmt.Errorf("dbms %s: replicated statement for unknown database %q", s.name, dbName)
	}
	sess := db.NewSession()
	defer sess.Close()
	_, err := execOn(sess, m)
	return err
}

// Execute runs one statement on the named database in-process — no
// wire connection — and ships it to attached replicas when it mutates,
// exactly like a statement arriving over the protocol. Cluster members
// embed a non-listening Server purely as a replication hub and funnel
// their store writes through here, so every member's local database
// converges with its peers'.
func (s *Server) Execute(dbName, sql string, args ...any) (*sqlmini.Result, error) {
	db := s.Database(dbName)
	if db == nil {
		return nil, fmt.Errorf("dbms %s: no database %q", s.name, dbName)
	}
	m, err := marshalExec(sql, args)
	if err != nil {
		return nil, err
	}
	mutating, err := isMutating(sql)
	if err != nil {
		return nil, err
	}
	s.queries.Add(1)
	sess := db.NewSession()
	defer sess.Close()
	res, err := execOn(sess, m)
	if err != nil {
		return nil, err
	}
	if mutating {
		s.replicate(dbName, m)
	}
	return res, nil
}

// isMutating classifies a statement by its parsed type.
func isMutating(sql string) (bool, error) {
	st, err := sqlmini.Parse(sql)
	if err != nil {
		return false, err
	}
	return isMutatingStmt(st), nil
}

func isMutatingStmt(st sqlmini.Statement) bool {
	switch st.(type) {
	case *sqlmini.InsertStmt, *sqlmini.UpdateStmt, *sqlmini.DeleteStmt,
		*sqlmini.CreateTableStmt, *sqlmini.CreateIndexStmt, *sqlmini.DropTableStmt:
		return true
	default:
		return false
	}
}
