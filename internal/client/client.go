// Package client defines the generic database client API used by every
// application in this repository — the analog of JDBC in the paper. A
// Driver turns a connection URL into live Conns; applications program
// against these interfaces and never against a concrete driver, which is
// precisely what lets the Drivolution bootloader substitute itself for
// the driver (paper §3.1.1: "The Drivolution bootloader is an interceptor
// that substitutes the driver in the client application").
package client

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dbver"
	"repro/internal/sqlmini"
)

// Props carries driver configuration options, the analog of JDBC
// connection properties. The paper's driver_options column is rendered
// into Props by the bootloader.
type Props map[string]string

// Clone returns a copy of p (nil-safe).
func (p Props) Clone() Props {
	if p == nil {
		return nil
	}
	out := make(Props, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Merge returns a copy of p with overrides applied on top.
func (p Props) Merge(overrides Props) Props {
	out := make(Props, len(p)+len(overrides))
	for k, v := range p {
		out[k] = v
	}
	for k, v := range overrides {
		out[k] = v
	}
	return out
}

// String renders props deterministically for logs.
func (p Props) String() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%s", k, p[k])
	}
	return sb.String()
}

// Result is a statement outcome delivered to applications.
type Result struct {
	Cols     []string
	Rows     [][]sqlmini.Value
	Affected int
}

// Driver creates connections to a database. Implementations: the legacy
// static drivers in internal/dbms and internal/sequoia, the driver-image
// runtime in internal/driverimg, and the Drivolution bootloader itself.
type Driver interface {
	// Name identifies the driver implementation, e.g. "dbms-native".
	Name() string
	// Version is the driver implementation version.
	Version() dbver.Version
	// Connect opens a connection to the database addressed by url.
	Connect(url string, props Props) (Conn, error)
}

// Conn is one live database connection.
type Conn interface {
	// Exec runs a statement and returns its result.
	Exec(query string, args ...any) (*Result, error)
	// Query is Exec for row-returning statements.
	Query(query string, args ...any) (*Result, error)
	// Begin opens a transaction on this connection.
	Begin() error
	// Commit commits the open transaction.
	Commit() error
	// Rollback aborts the open transaction.
	Rollback() error
	// InTx reports whether a transaction is open.
	InTx() bool
	// Ping verifies the connection is alive.
	Ping() error
	// Close releases the connection.
	Close() error
}

// API-level errors shared across driver implementations.
var (
	// ErrClosed reports use of a closed connection.
	ErrClosed = errors.New("client: connection is closed")
	// ErrAuth reports failed authentication.
	ErrAuth = errors.New("client: authentication failed")
	// ErrProtocolMismatch reports a driver/server wire-protocol version
	// incompatibility — the paper's step-5 failure mode.
	ErrProtocolMismatch = errors.New("client: protocol version mismatch")
	// ErrNoDatabase reports an unknown database name.
	ErrNoDatabase = errors.New("client: no such database")
	// ErrConnRevoked reports a connection force-closed by a driver
	// replacement policy (IMMEDIATE / AFTER_COMMIT).
	ErrConnRevoked = errors.New("client: connection revoked by driver replacement")
	// ErrStatementNotSent reports a connection failure that happened
	// before the statement left the client: the statement provably never
	// executed, so callers may safely retry it on a fresh connection.
	// Connection failures WITHOUT this mark are ambiguous — the server
	// may or may not have applied the statement.
	ErrStatementNotSent = errors.New("client: statement never reached the server")
	// ErrNotSupported reports an optional capability the connection's
	// negotiated session does not carry (e.g. remote prepared statements
	// against a server that only speaks protocol v1). Callers detect it
	// with errors.Is and fall back to the capability-free path.
	ErrNotSupported = errors.New("client: capability not supported by this connection")
)

// Statement is one SQL statement plus its arguments, the unit of batch
// execution.
type Statement struct {
	SQL  string
	Args []any
}

// Feature names an optional per-session capability negotiated at
// connect time. Connections report what their session actually carries
// through FeatureConn; the corresponding methods return ErrNotSupported
// when the feature is absent.
type Feature string

// Session features negotiable by capability-aware protocols.
const (
	// FeaturePreparedStatements: the session can hold server-side
	// prepared-statement handles (StmtConn is live).
	FeaturePreparedStatements Feature = "prepared-statements"
	// FeatureTableVersions: the session can probe server-side per-table
	// mutation counters (TableVersionConn is live).
	FeatureTableVersions Feature = "table-versions"
)

// FeatureConn is optionally implemented by connections whose protocol
// negotiates per-session capabilities. Supports reports whether the
// live session carries the feature; it never performs I/O, so pooled
// callers can gate cheaply before attempting a capability call.
type FeatureConn interface {
	// Supports reports whether the session negotiated the feature.
	Supports(f Feature) bool
}

// ConnStmt is a server-side prepared-statement handle bound to one
// connection: the server parsed (and planned) the statement once;
// each Exec ships only the handle id and the arguments. Handles die
// with their connection.
type ConnStmt interface {
	// Exec runs the prepared statement with the given arguments.
	Exec(args ...any) (*Result, error)
	// Query is Exec for row-returning statements.
	Query(args ...any) (*Result, error)
	// Close releases the server-side handle.
	Close() error
}

// StmtConn is optionally implemented by connections that can hold
// server-side prepared statements (the BatchConn pattern). Prepare
// returns ErrNotSupported when the negotiated session lacks
// FeaturePreparedStatements.
type StmtConn interface {
	// Prepare registers sql on the server and returns its handle.
	Prepare(sql string) (ConnStmt, error)
}

// TableVersionConn is optionally implemented by connections that can
// probe the server's per-table mutation counters in one round trip —
// the wire form of the generation counters backing metadata caches.
// TableVersions returns ErrNotSupported when the negotiated session
// lacks FeatureTableVersions.
type TableVersionConn interface {
	// TableVersions reports the mutation counter of each named table,
	// parallel to names. Unknown tables report 0.
	TableVersions(names ...string) ([]uint64, error)
}

// BatchConn is optionally implemented by connections that can ship a
// whole statement batch to the server in a single wire round trip.
type BatchConn interface {
	// ExecBatch executes stmts in order on this connection. When atomic
	// is true the server wraps the batch in a transaction and rolls it
	// back if any statement fails; atomic batches must not themselves
	// contain transaction control, and are rejected while a
	// transaction is already open on the connection (the server could
	// not honor the rollback promise without clobbering it). On
	// failure the returned results are nil and the error identifies
	// the failing statement.
	ExecBatch(atomic bool, stmts []Statement) ([]*Result, error)
}

// URL is a parsed connection URL:
//
//	scheme://host1:port1[,host2:port2...]/database[?key=value&...]
//
// Multiple hosts support the Sequoia multi-controller URL form
// 'sequoia://controller1,controller2/db' (paper §5.3.2).
type URL struct {
	Scheme   string
	Hosts    []string
	Database string
	Options  Props
}

// ParseURL parses a connection URL.
func ParseURL(raw string) (*URL, error) {
	rest := raw
	i := strings.Index(rest, "://")
	if i < 0 {
		return nil, fmt.Errorf("client: URL %q missing scheme", raw)
	}
	u := &URL{Scheme: rest[:i], Options: Props{}}
	if u.Scheme == "" {
		return nil, fmt.Errorf("client: URL %q missing scheme", raw)
	}
	rest = rest[i+3:]

	var query string
	if qi := strings.IndexByte(rest, '?'); qi >= 0 {
		query = rest[qi+1:]
		rest = rest[:qi]
	}
	hostPart := rest
	if si := strings.IndexByte(rest, '/'); si >= 0 {
		hostPart = rest[:si]
		u.Database = rest[si+1:]
	}
	if hostPart == "" {
		return nil, fmt.Errorf("client: URL %q missing host", raw)
	}
	for _, h := range strings.Split(hostPart, ",") {
		h = strings.TrimSpace(h)
		if h != "" {
			u.Hosts = append(u.Hosts, h)
		}
	}
	if len(u.Hosts) == 0 {
		return nil, fmt.Errorf("client: URL %q missing host", raw)
	}
	if query != "" {
		for _, kv := range strings.Split(query, "&") {
			if kv == "" {
				continue
			}
			k, v, _ := strings.Cut(kv, "=")
			u.Options[k] = v
		}
	}
	return u, nil
}

// String reassembles the URL.
func (u *URL) String() string {
	var sb strings.Builder
	sb.WriteString(u.Scheme)
	sb.WriteString("://")
	sb.WriteString(strings.Join(u.Hosts, ","))
	if u.Database != "" {
		sb.WriteByte('/')
		sb.WriteString(u.Database)
	}
	if len(u.Options) > 0 {
		keys := make([]string, 0, len(u.Options))
		for k := range u.Options {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sep := byte('?')
		for _, k := range keys {
			sb.WriteByte(sep)
			sep = '&'
			sb.WriteString(k)
			sb.WriteByte('=')
			sb.WriteString(u.Options[k])
		}
	}
	return sb.String()
}
