package client

import (
	"errors"
	"fmt"
	"sync"
)

// ErrPoolClosed reports use of a closed pool.
var ErrPoolClosed = errors.New("client: pool is closed")

// Pool is a bounded connection pool over an arbitrary connect function.
// The paper notes (§3.4.2) that the AFTER_CLOSE expiration policy
// interacts badly with pools because pooled connections are rarely
// closed; the workload scenarios use this pool to demonstrate exactly
// that effect.
type Pool struct {
	connect func() (Conn, error)
	max     int

	mu     sync.Mutex
	idle   []Conn
	active int
	closed bool
	// waiters receive a freed slot (a nil Conn means "dial your own").
	waiters []chan Conn
}

// NewPool creates a pool that opens connections with connect and holds at
// most max connections (idle + active). max must be >= 1.
func NewPool(connect func() (Conn, error), max int) (*Pool, error) {
	if max < 1 {
		return nil, fmt.Errorf("client: pool max must be >= 1, got %d", max)
	}
	return &Pool{connect: connect, max: max}, nil
}

// Get returns an idle connection or dials a new one, blocking when the
// pool is at capacity until a connection is returned.
func (p *Pool) Get() (Conn, error) {
	p.mu.Lock()
	for {
		if p.closed {
			p.mu.Unlock()
			return nil, ErrPoolClosed
		}
		if n := len(p.idle); n > 0 {
			c := p.idle[n-1]
			p.idle = p.idle[:n-1]
			p.active++
			p.mu.Unlock()
			// Verify liveness; a revoked/broken idle conn is replaced.
			if err := c.Ping(); err != nil {
				_ = c.Close()
				return p.dialReplacement()
			}
			return c, nil
		}
		if p.active < p.max {
			p.active++
			p.mu.Unlock()
			c, err := p.connect()
			if err != nil {
				p.mu.Lock()
				p.active--
				p.notifyOneLocked(nil)
				p.mu.Unlock()
				return nil, err
			}
			return c, nil
		}
		// At capacity: wait for a Put or Discard.
		ch := make(chan Conn, 1)
		p.waiters = append(p.waiters, ch)
		p.mu.Unlock()
		c, ok := <-ch
		if !ok {
			return nil, ErrPoolClosed
		}
		if c != nil {
			if err := c.Ping(); err != nil {
				_ = c.Close()
				return p.dialReplacement()
			}
			return c, nil
		}
		p.mu.Lock() // slot freed; retry
	}
}

// dialReplacement opens a fresh connection for a slot already counted as
// active.
func (p *Pool) dialReplacement() (Conn, error) {
	c, err := p.connect()
	if err != nil {
		p.mu.Lock()
		p.active--
		p.notifyOneLocked(nil)
		p.mu.Unlock()
		return nil, err
	}
	return c, nil
}

// Put returns a connection to the pool for reuse.
func (p *Pool) Put(c Conn) {
	p.mu.Lock()
	if p.closed {
		p.active--
		p.mu.Unlock()
		_ = c.Close()
		return
	}
	if len(p.waiters) > 0 {
		// Hand off directly; the slot stays active under the new owner.
		w := p.waiters[0]
		p.waiters = p.waiters[1:]
		p.mu.Unlock()
		w <- c
		return
	}
	p.active--
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// Discard removes a broken connection from the pool's accounting and
// closes it; the freed slot wakes one waiter.
func (p *Pool) Discard(c Conn) {
	_ = c.Close()
	p.mu.Lock()
	p.active--
	p.notifyOneLocked(nil)
	p.mu.Unlock()
}

// notifyOneLocked wakes one waiter with v. Caller holds p.mu.
func (p *Pool) notifyOneLocked(v Conn) {
	if len(p.waiters) == 0 {
		return
	}
	w := p.waiters[0]
	p.waiters = p.waiters[1:]
	w <- v
}

// Stats reports current pool occupancy.
func (p *Pool) Stats() (idle, active int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle), p.active
}

// DrainIdle closes all idle connections, returning how many were closed.
// The Drivolution bootloader calls this during driver upgrades so stale
// pooled connections don't outlive the old driver indefinitely.
func (p *Pool) DrainIdle() int {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, c := range idle {
		_ = c.Close()
	}
	return len(idle)
}

// Close closes the pool and all idle connections. Active connections are
// closed by their holders via Put/Discard.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	waiters := p.waiters
	p.waiters = nil
	p.mu.Unlock()
	for _, c := range idle {
		_ = c.Close()
	}
	for _, w := range waiters {
		close(w)
	}
}
