package client

import (
	"sync"
	"testing"
)

// nopConn is a zero-cost Conn for pool micro-benchmarks.
type nopConn struct{ closed bool }

func (c *nopConn) Exec(string, ...any) (*Result, error)  { return &Result{}, nil }
func (c *nopConn) Query(string, ...any) (*Result, error) { return &Result{}, nil }
func (c *nopConn) Begin() error                          { return nil }
func (c *nopConn) Commit() error                         { return nil }
func (c *nopConn) Rollback() error                       { return nil }
func (c *nopConn) InTx() bool                            { return false }
func (c *nopConn) Ping() error                           { return nil }
func (c *nopConn) Close() error                          { c.closed = true; return nil }

func BenchmarkPoolGetPut(b *testing.B) {
	p, err := NewPool(func() (Conn, error) { return &nopConn{}, nil }, 8)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := p.Get()
		if err != nil {
			b.Fatal(err)
		}
		p.Put(c)
	}
}

func BenchmarkPoolContended(b *testing.B) {
	p, err := NewPool(func() (Conn, error) { return &nopConn{}, nil }, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	var wg sync.WaitGroup
	workers := 16
	per := b.N / workers
	if per == 0 {
		per = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c, err := p.Get()
				if err != nil {
					b.Error(err)
					return
				}
				p.Put(c)
			}
		}()
	}
	wg.Wait()
}

func BenchmarkParseURL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseURL("sequoia://controller1:7001,controller2:7002/db?user=app&fetch=100"); err != nil {
			b.Fatal(err)
		}
	}
}
