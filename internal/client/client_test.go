package client

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/sqlmini"
)

func TestParseURL(t *testing.T) {
	tests := []struct {
		in       string
		scheme   string
		hosts    []string
		database string
		opts     Props
		wantErr  bool
	}{
		{
			in:     "dbms://localhost:9001/prod",
			scheme: "dbms", hosts: []string{"localhost:9001"}, database: "prod",
		},
		{
			in:     "sequoia://controller1:7001,controller2:7002/db",
			scheme: "sequoia", hosts: []string{"controller1:7001", "controller2:7002"}, database: "db",
		},
		{
			in:     "dbms://h:1/db?user=alice&fetch=100",
			scheme: "dbms", hosts: []string{"h:1"}, database: "db",
			opts: Props{"user": "alice", "fetch": "100"},
		},
		{
			in:     "drivolution://h:1",
			scheme: "drivolution", hosts: []string{"h:1"}, database: "",
		},
		{in: "no-scheme", wantErr: true},
		{in: "://host/db", wantErr: true},
		{in: "dbms:///db", wantErr: true},
		{in: "dbms://,/db", wantErr: true},
	}
	for _, tt := range tests {
		u, err := ParseURL(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseURL(%q) succeeded, want error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseURL(%q): %v", tt.in, err)
			continue
		}
		if u.Scheme != tt.scheme || u.Database != tt.database {
			t.Errorf("ParseURL(%q) = scheme %q db %q", tt.in, u.Scheme, u.Database)
		}
		if len(u.Hosts) != len(tt.hosts) {
			t.Errorf("ParseURL(%q) hosts = %v", tt.in, u.Hosts)
			continue
		}
		for i := range u.Hosts {
			if u.Hosts[i] != tt.hosts[i] {
				t.Errorf("ParseURL(%q) hosts = %v, want %v", tt.in, u.Hosts, tt.hosts)
			}
		}
		for k, v := range tt.opts {
			if u.Options[k] != v {
				t.Errorf("ParseURL(%q) option %s = %q, want %q", tt.in, k, u.Options[k], v)
			}
		}
	}
}

func TestURLStringRoundTrip(t *testing.T) {
	for _, raw := range []string{
		"dbms://localhost:9001/prod",
		"sequoia://c1:1,c2:2/db",
		"dbms://h:1/db?a=1&b=2",
	} {
		u, err := ParseURL(raw)
		if err != nil {
			t.Fatal(err)
		}
		again, err := ParseURL(u.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", u.String(), err)
		}
		if again.String() != u.String() {
			t.Errorf("round trip: %q vs %q", again.String(), u.String())
		}
	}
}

func TestPropsMergeClone(t *testing.T) {
	base := Props{"a": "1", "b": "2"}
	merged := base.Merge(Props{"b": "x", "c": "3"})
	if merged["a"] != "1" || merged["b"] != "x" || merged["c"] != "3" {
		t.Errorf("merged = %v", merged)
	}
	if base["b"] != "2" {
		t.Error("Merge mutated the receiver")
	}
	c := base.Clone()
	c["a"] = "changed"
	if base["a"] != "1" {
		t.Error("Clone did not copy")
	}
	if Props(nil).Clone() != nil {
		t.Error("nil Clone should be nil")
	}
	if got := (Props{"z": "1", "a": "2"}).String(); got != "a=2 z=1" {
		t.Errorf("String = %q", got)
	}
}

// stubConn is a minimal Conn for pool tests.
type stubConn struct {
	mu     sync.Mutex
	closed bool
	broken bool
	id     int
}

func (c *stubConn) Exec(string, ...any) (*Result, error)  { return &Result{}, nil }
func (c *stubConn) Query(string, ...any) (*Result, error) { return &Result{}, nil }
func (c *stubConn) Begin() error                          { return nil }
func (c *stubConn) Commit() error                         { return nil }
func (c *stubConn) Rollback() error                       { return nil }
func (c *stubConn) InTx() bool                            { return false }

func (c *stubConn) Ping() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.broken {
		return ErrClosed
	}
	return nil
}

func (c *stubConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func TestPoolReuse(t *testing.T) {
	dials := 0
	p, err := NewPool(func() (Conn, error) {
		dials++
		return &stubConn{id: dials}, nil
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c1, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	p.Put(c1)
	c2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("pool should reuse the idle connection")
	}
	if dials != 1 {
		t.Errorf("dials = %d", dials)
	}
	p.Put(c2)
	idle, active := p.Stats()
	if idle != 1 || active != 0 {
		t.Errorf("stats = %d idle, %d active", idle, active)
	}
}

func TestPoolCapacityBlocksAndHandsOff(t *testing.T) {
	p, err := NewPool(func() (Conn, error) { return &stubConn{}, nil }, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c1, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan Conn, 1)
	go func() {
		c, err := p.Get() // blocks until Put
		if err != nil {
			got <- nil
			return
		}
		got <- c
	}()
	select {
	case <-got:
		t.Fatal("Get should have blocked at capacity")
	case <-time.After(50 * time.Millisecond):
	}
	p.Put(c1)
	select {
	case c := <-got:
		if c != c1 {
			t.Error("expected direct hand-off of the returned connection")
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestPoolDiscardFreesSlot(t *testing.T) {
	p, err := NewPool(func() (Conn, error) { return &stubConn{}, nil }, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c1, _ := p.Get()
	done := make(chan error, 1)
	go func() {
		c, err := p.Get()
		if err == nil {
			p.Put(c)
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	p.Discard(c1)
	if err := <-done; err != nil {
		t.Fatalf("waiter after Discard: %v", err)
	}
}

func TestPoolReplacesBrokenIdle(t *testing.T) {
	dials := 0
	p, err := NewPool(func() (Conn, error) {
		dials++
		return &stubConn{id: dials}, nil
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c1, _ := p.Get()
	p.Put(c1)
	c1.(*stubConn).broken = true
	c2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Error("broken idle connection must be replaced")
	}
	if dials != 2 {
		t.Errorf("dials = %d", dials)
	}
}

func TestPoolClose(t *testing.T) {
	p, err := NewPool(func() (Conn, error) { return &stubConn{}, nil }, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := p.Get()

	waiterErr := make(chan error, 1)
	go func() {
		_, err := p.Get()
		waiterErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	p.Close()
	if err := <-waiterErr; !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("waiter err = %v", err)
	}
	if _, err := p.Get(); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Get after close = %v", err)
	}
	p.Put(c) // returning into a closed pool closes the conn
	if c.(*stubConn).Ping() == nil {
		t.Error("conn returned to closed pool should be closed")
	}
	p.Close() // idempotent
}

func TestPoolDrainIdle(t *testing.T) {
	p, err := NewPool(func() (Conn, error) { return &stubConn{}, nil }, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var conns []Conn
	for i := 0; i < 3; i++ {
		c, err := p.Get()
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	for _, c := range conns {
		p.Put(c)
	}
	if n := p.DrainIdle(); n != 3 {
		t.Fatalf("DrainIdle = %d", n)
	}
	for _, c := range conns {
		if c.Ping() == nil {
			t.Error("drained connection should be closed")
		}
	}
}

func TestPoolConnectError(t *testing.T) {
	boom := fmt.Errorf("dial failed")
	p, err := NewPool(func() (Conn, error) { return nil, boom }, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Get(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Slot must have been released; a second Get fails the same way
	// rather than deadlocking.
	done := make(chan error, 1)
	go func() {
		_, err := p.Get()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("second Get err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("second Get deadlocked: connect-failure leaked the slot")
	}
}

func TestPoolConcurrentStress(t *testing.T) {
	var mu sync.Mutex
	open := 0
	maxOpen := 0
	p, err := NewPool(func() (Conn, error) {
		mu.Lock()
		open++
		if open > maxOpen {
			maxOpen = open
		}
		mu.Unlock()
		return &stubConn{}, nil
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				c, err := p.Get()
				if err != nil {
					t.Error(err)
					return
				}
				time.Sleep(time.Microsecond)
				p.Put(c)
			}
		}()
	}
	wg.Wait()
	if maxOpen > 4 {
		t.Errorf("max open connections = %d, want <= 4", maxOpen)
	}
	_, active := p.Stats()
	if active != 0 {
		t.Errorf("active = %d after all Puts", active)
	}
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(func() (Conn, error) { return nil, nil }, 0); err == nil {
		t.Fatal("max=0 should be rejected")
	}
}

// Ensure Result type composes with sqlmini values (compile-time usage).
func TestResultHoldsValues(t *testing.T) {
	r := &Result{Cols: []string{"a"}, Rows: [][]sqlmini.Value{{sqlmini.NewInt(1)}}}
	if r.Rows[0][0].Int() != 1 {
		t.Fatal("value round trip")
	}
}
