package license

import (
	"errors"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/sqlmini"
)

// stack is a license-mode Drivolution server + target DBMS + runtime.
type stack struct {
	target *dbms.Server
	srv    *core.Server
	rt     *driverimg.Runtime
}

func newStack(t *testing.T, lease time.Duration) *stack {
	t.Helper()
	appDB := sqlmini.NewDB()
	appDB.MustExec("CREATE TABLE t (x INTEGER)")
	target := dbms.NewServer("db", dbms.WithUser("u1", "pw"), dbms.WithUser("u2", "pw"))
	target.AddDatabase("prod", appDB)
	if err := target.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(target.Stop)

	srv, err := core.NewServer("lic", core.NewLocalStore(sqlmini.NewDB()),
		core.WithLicenseMode(), core.WithDefaultLease(lease))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)

	img := &driverimg.Image{
		Manifest: driverimg.Manifest{
			Kind:            dbms.DriverKind,
			API:             dbver.APIOf("JDBC", 3, 0),
			Version:         dbver.V(1, 0, 0),
			ProtocolVersion: 1,
		},
		Payload: []byte("license key #1"),
	}
	if _, err := srv.AddDriver(img, dbver.FormatImage); err != nil {
		t.Fatal(err)
	}

	rt := driverimg.NewRuntime()
	rt.Register(dbms.DriverKind, dbms.ImageFactory())
	return &stack{target: target, srv: srv, rt: rt}
}

func (s *stack) bootloader(t *testing.T, user, id string) *core.Bootloader {
	t.Helper()
	b := core.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{s.srv.Addr()}, s.rt,
		core.WithCredentials(user, "pw"),
		core.WithClientID(id),
		core.WithDialTimeout(time.Second))
	t.Cleanup(b.Close)
	return b
}

func (s *stack) url() string { return "dbms://" + s.target.Addr() + "/prod" }

func TestSingleLicenseExclusion(t *testing.T) {
	s := newStack(t, time.Hour)
	b1 := s.bootloader(t, "u1", "c1")
	if _, err := b1.Connect(s.url(), client.Props{"user": "u1", "password": "pw"}); err != nil {
		t.Fatal(err)
	}
	b2 := s.bootloader(t, "u2", "c2")
	_, err := b2.Connect(s.url(), client.Props{"user": "u2", "password": "pw"})
	var pe *core.ProtocolError
	if !errors.As(err, &pe) || pe.Code != core.ErrCodeNoDriver {
		t.Fatalf("second holder should be denied: %v", err)
	}
}

func TestLeaseExpiryFreesLicense(t *testing.T) {
	s := newStack(t, 50*time.Millisecond)
	b1 := s.bootloader(t, "u1", "c1")
	if _, err := b1.Connect(s.url(), client.Props{"user": "u1", "password": "pw"}); err != nil {
		t.Fatal(err)
	}
	b1.Close() // dies without releasing; no renewals will come

	// After expiry the license frees itself (strategy 3).
	time.Sleep(80 * time.Millisecond)
	b2 := s.bootloader(t, "u2", "c2")
	if _, err := b2.Connect(s.url(), client.Props{"user": "u2", "password": "pw"}); err != nil {
		t.Fatalf("license should free after lease expiry: %v", err)
	}
}

func TestManagerDBMSFailureDetector(t *testing.T) {
	s := newStack(t, time.Hour) // long lease: only the detector can reclaim
	b1 := s.bootloader(t, "u1", "c1")
	c, err := b1.Connect(s.url(), client.Props{"user": "u1", "password": "pw"})
	if err != nil {
		t.Fatal(err)
	}

	mgr := NewManager(s.srv, DetectorFromDBMS(s.target))
	// While u1 has a live DB session, nothing is reclaimed.
	if n, err := mgr.SweepOnce(); err != nil || n != 0 {
		t.Fatalf("sweep = %d, %v", n, err)
	}

	// The client dies: its DB connection closes, no release was sent.
	_ = c.Close()
	b1.Close()
	waitUntil(t, func() bool { return !s.target.UserHasSession("u1") })

	n, err := mgr.SweepOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || mgr.Reclaimed() != 1 {
		t.Fatalf("reclaimed = %d (total %d)", n, mgr.Reclaimed())
	}

	// License is available again.
	b2 := s.bootloader(t, "u2", "c2")
	if _, err := b2.Connect(s.url(), client.Props{"user": "u2", "password": "pw"}); err != nil {
		t.Fatalf("license should be free after reclamation: %v", err)
	}
}

func TestManagerBackgroundSweep(t *testing.T) {
	s := newStack(t, time.Hour)
	b1 := s.bootloader(t, "u1", "c1")
	c, err := b1.Connect(s.url(), client.Props{"user": "u1", "password": "pw"})
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(s.srv, DetectorFromDBMS(s.target), WithInterval(20*time.Millisecond))
	mgr.Start()
	defer mgr.Stop()

	_ = c.Close()
	b1.Close()
	waitUntil(t, func() bool { return mgr.Reclaimed() >= 1 })
	mgr.Stop()
	mgr.Stop() // idempotent
}

func TestExplicitReleasePath(t *testing.T) {
	s := newStack(t, time.Hour)
	b1 := s.bootloader(t, "u1", "c1")
	if _, err := b1.Connect(s.url(), client.Props{"user": "u1", "password": "pw"}); err != nil {
		t.Fatal(err)
	}
	if err := b1.ReleaseLease(); err != nil {
		t.Fatal(err)
	}
	b2 := s.bootloader(t, "u2", "c2")
	if _, err := b2.Connect(s.url(), client.Props{"user": "u2", "password": "pw"}); err != nil {
		t.Fatalf("license should be free after explicit release: %v", err)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}
