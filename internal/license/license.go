// Package license builds the paper's §5.4.2 case study — "Drivolution as
// a License Server" — on top of the core lease machinery. A Drivolution
// server in license mode hands each driver (license key) to at most one
// live lease; this package adds the server-side failure detection that
// reclaims licenses from clients that died without releasing them.
//
// The paper describes three reclamation strategies; all are covered:
//
//  1. explicit release — the bootloader "notif[ies] the Drivolution
//     server when the driver is unloaded to give back its lease"
//     (core.Bootloader.ReleaseLease);
//  2. tight DBMS integration — "check if any connection with the client
//     is still active in the database engine" (DetectorFromDBMS feeding
//     Manager);
//  3. lease expiry — "wait for the client lease to expire and, if no
//     lease renewal command has been issued ... declare the driver
//     freed" (enforced by the core server's expires_at check; Manager
//     additionally marks such leases released for bookkeeping).
package license

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dbms"
)

// Detector reports whether the client holding a lease is still alive.
type Detector func(lease core.Lease) bool

// DetectorFromDBMS builds a Detector backed by the database engine's
// session table: a client is alive while its user has at least one
// active connection.
func DetectorFromDBMS(srv *dbms.Server) Detector {
	return func(l core.Lease) bool {
		return srv.UserHasSession(l.User)
	}
}

// Manager periodically sweeps the lease table of a license-mode
// Drivolution server and releases leases whose holders are dead or whose
// term expired without renewal.
type Manager struct {
	srv      *core.Server
	detector Detector
	interval time.Duration
	clock    func() time.Time

	mu        sync.Mutex
	stopCh    chan struct{}
	running   bool
	reclaimed int

	wg sync.WaitGroup
}

// Option configures a Manager.
type Option func(*Manager)

// WithInterval sets the sweep period (default 1s).
func WithInterval(d time.Duration) Option {
	return func(m *Manager) { m.interval = d }
}

// WithClock overrides the time source (tests).
func WithClock(clock func() time.Time) Option {
	return func(m *Manager) { m.clock = clock }
}

// NewManager creates a license manager over srv. detector may be nil, in
// which case only lease expiry reclaims licenses.
func NewManager(srv *core.Server, detector Detector, opts ...Option) *Manager {
	m := &Manager{
		srv:      srv,
		detector: detector,
		interval: time.Second,
		clock:    time.Now,
		stopCh:   make(chan struct{}),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Reclaimed reports how many licenses the manager has reclaimed.
func (m *Manager) Reclaimed() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reclaimed
}

// SweepOnce scans the lease table once, releasing dead or expired
// leases, and returns how many it reclaimed.
func (m *Manager) SweepOnce() (int, error) {
	leases, err := m.srv.Leases()
	if err != nil {
		return 0, fmt.Errorf("license: sweep: %w", err)
	}
	now := m.clock()
	n := 0
	for _, l := range leases {
		if l.Released {
			continue
		}
		expired := now.After(l.ExpiresAt)
		dead := m.detector != nil && !m.detector(l)
		if !expired && !dead {
			continue
		}
		if err := m.srv.ReleaseLeaseByID(l.LeaseID); err != nil {
			return n, fmt.Errorf("license: release lease %d: %w", l.LeaseID, err)
		}
		n++
	}
	m.mu.Lock()
	m.reclaimed += n
	m.mu.Unlock()
	return n, nil
}

// Start launches the periodic sweep goroutine.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.running {
		m.mu.Unlock()
		return
	}
	m.running = true
	m.mu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(m.interval)
		defer t.Stop()
		for {
			select {
			case <-m.stopCh:
				return
			case <-t.C:
				_, _ = m.SweepOnce()
			}
		}
	}()
}

// Stop halts the sweep goroutine.
func (m *Manager) Stop() {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	m.running = false
	close(m.stopCh)
	m.mu.Unlock()
	m.wg.Wait()
}
