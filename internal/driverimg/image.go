// Package driverimg defines the driver image: the unit of distribution
// that Drivolution stores in the database's drivers table (the paper's
// binary_code BLOB) and ships to bootloaders.
//
// Substitution note (see DESIGN.md §2): the paper's Java implementation
// ships JAR files and loads them with a fresh classloader. A static Go
// binary cannot hot-load native code, so a driver image is a *signed,
// serialized description of driver behaviour* — which wire protocol
// version to speak, which dialect quirks to apply, which endpoint to pin
// (the paper's pre-configured failover drivers, §5.2), which feature
// packages are included (§5.4.1), and arbitrary configuration options.
// The Runtime in this package instantiates an image into a live
// client.Driver at run time. Everything the paper's lifecycle measures —
// fetch, verify, install, hot-swap under live connections — exercises the
// same code path.
package driverimg

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/dbver"
	"repro/internal/wire"
)

// imageVersion guards the serialized image format.
const imageVersion = 1

// Manifest describes one driver build.
type Manifest struct {
	// Kind selects the connector factory in the Runtime, e.g.
	// "dbms-native" or "sequoia". The analog of the driver's main class.
	Kind string
	// API is the client-facing API this driver implements (JDBC analog).
	API dbver.API
	// Platform is the platform this build targets; empty means portable.
	Platform dbver.Platform
	// Version is the driver's own three-part version.
	Version dbver.Version
	// ProtocolVersion is the wire-protocol major version the driver
	// speaks to the server. Mismatches reproduce the paper's step-5
	// connect-time incompatibility.
	ProtocolVersion uint16
	// PinnedURL, when set, overrides whatever URL the application passes
	// to connect — the paper's pre-configured DBmaster/DBslave failover
	// drivers (§5.2) are exactly this.
	PinnedURL string
	// Options are driver configuration defaults, merged under the
	// application's own props (driver_options column, Table 2).
	Options map[string]string
	// Packages lists included feature packages (NLS, GIS, Kerberos...),
	// §5.4.1. Sorted on encode.
	Packages []string
}

// Clone deep-copies the manifest.
func (m Manifest) Clone() Manifest {
	out := m
	if m.Options != nil {
		out.Options = make(map[string]string, len(m.Options))
		for k, v := range m.Options {
			out.Options[k] = v
		}
	}
	out.Packages = append([]string(nil), m.Packages...)
	return out
}

// HasPackage reports whether the manifest includes the named package.
func (m Manifest) HasPackage(name string) bool {
	for _, p := range m.Packages {
		if p == name {
			return true
		}
	}
	return false
}

// ID renders a stable human-readable identity for logs:
// kind/api/version/platform.
func (m Manifest) ID() string {
	plat := string(m.Platform)
	if plat == "" {
		plat = "any"
	}
	return fmt.Sprintf("%s/%s/%s/%s", m.Kind, m.API, m.Version, plat)
}

// Image is a manifest plus integrity metadata, ready for storage in the
// drivers table or transfer to a bootloader.
type Image struct {
	Manifest Manifest
	// Payload is opaque ballast simulating the code body of a real
	// driver; assembly (§5.4.1) concatenates per-package payloads. Its
	// size shows up in transfer benchmarks.
	Payload []byte
	// Signature is an ed25519 signature over the canonical encoding of
	// (manifest, payload); empty for unsigned images.
	Signature []byte
}

// Encode serializes the image into the BLOB stored in binary_code.
func (img *Image) Encode() []byte {
	e := wire.NewEncoder(256 + len(img.Payload))
	e.Uint8(imageVersion)
	encodeManifest(e, img.Manifest)
	e.Bytes32(img.Payload)
	e.Bytes32(img.Signature)
	return e.Bytes()
}

// Decode parses an encoded image.
func Decode(blob []byte) (*Image, error) {
	d := wire.NewDecoder(blob)
	if v := d.Uint8(); v != imageVersion {
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("driverimg: decode: %w", err)
		}
		return nil, fmt.Errorf("driverimg: unsupported image version %d", v)
	}
	m, err := decodeManifest(d)
	if err != nil {
		return nil, err
	}
	img := &Image{Manifest: m, Payload: d.Bytes32(), Signature: d.Bytes32()}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("driverimg: decode: %w", err)
	}
	return img, nil
}

func encodeManifest(e *wire.Encoder, m Manifest) {
	e.String(m.Kind)
	e.String(m.API.Name)
	e.Int32(int32(m.API.Major))
	e.Int32(int32(m.API.Minor))
	e.String(string(m.Platform))
	e.Int32(int32(m.Version.Major))
	e.Int32(int32(m.Version.Minor))
	e.Int32(int32(m.Version.Micro))
	e.Uint16(m.ProtocolVersion)
	e.String(m.PinnedURL)
	keys := make([]string, 0, len(m.Options))
	for k := range m.Options {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.Uint32(uint32(len(keys)))
	for _, k := range keys {
		e.String(k)
		e.String(m.Options[k])
	}
	pkgs := append([]string(nil), m.Packages...)
	sort.Strings(pkgs)
	e.StringSlice(pkgs)
}

func decodeManifest(d *wire.Decoder) (Manifest, error) {
	var m Manifest
	m.Kind = d.String()
	m.API.Name = d.String()
	m.API.Major = int(d.Int32())
	m.API.Minor = int(d.Int32())
	m.Platform = dbver.Platform(d.String())
	m.Version.Major = int(d.Int32())
	m.Version.Minor = int(d.Int32())
	m.Version.Micro = int(d.Int32())
	m.ProtocolVersion = d.Uint16()
	m.PinnedURL = d.String()
	nOpts := d.Uint32()
	if err := d.Err(); err != nil {
		return m, fmt.Errorf("driverimg: decode manifest: %w", err)
	}
	if nOpts > 0 {
		m.Options = make(map[string]string, nOpts)
		for i := uint32(0); i < nOpts; i++ {
			k := d.String()
			m.Options[k] = d.String()
		}
	}
	m.Packages = d.StringSlice()
	if err := d.Err(); err != nil {
		return m, fmt.Errorf("driverimg: decode manifest: %w", err)
	}
	return m, nil
}

// canonicalBytes is the byte string covered by the signature.
func (img *Image) canonicalBytes() []byte {
	e := wire.NewEncoder(256 + len(img.Payload))
	encodeManifest(e, img.Manifest)
	e.Bytes32(img.Payload)
	return e.Bytes()
}

// Checksum returns the SHA-256 of the canonical encoding, hex-encoded;
// used as a cheap content identity in lease bookkeeping.
func (img *Image) Checksum() string {
	sum := sha256.Sum256(img.canonicalBytes())
	return hex.EncodeToString(sum[:])
}

// EncodedChecksum computes Checksum directly from an encoded image blob,
// without decoding it into an Image. The canonical (signed) byte range
// of an encoded image is everything between the version byte and the
// signature, so the checksum is a bounds-checked walk over the field
// length prefixes plus one hash — no manifest maps, no payload copy.
// Grant-path caches use this to checksum stored binary_code BLOBs once
// per catalog load. The walk also validates the framing, so a blob that
// Decode would reject errors here too.
func EncodedChecksum(blob []byte) (string, error) {
	if len(blob) == 0 {
		return "", fmt.Errorf("driverimg: encoded checksum: empty blob")
	}
	if blob[0] != imageVersion {
		return "", fmt.Errorf("driverimg: unsupported image version %d", blob[0])
	}
	end, err := canonicalEnd(blob)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob[1:end])
	return hex.EncodeToString(sum[:]), nil
}

// canonicalEnd walks an encoded image and returns the offset just past
// the payload (the end of the signature-covered range), validating that
// exactly one signature field follows.
func canonicalEnd(blob []byte) (int, error) {
	w := fieldWalker{buf: blob, off: 1} // skip the version byte
	w.skipPrefixed()                    // Kind
	w.skipPrefixed()                    // API.Name
	w.skip(8)                           // API major/minor
	w.skipPrefixed()                    // Platform
	w.skip(12)                          // Version major/minor/micro
	w.skip(2)                           // ProtocolVersion
	w.skipPrefixed()                    // PinnedURL
	nOpts := w.count()
	for i := uint32(0); i < nOpts && w.err == nil; i++ {
		w.skipPrefixed() // option key
		w.skipPrefixed() // option value
	}
	nPkgs := w.count()
	for i := uint32(0); i < nPkgs && w.err == nil; i++ {
		w.skipPrefixed() // package name
	}
	w.skipPrefixed() // Payload
	end := w.off
	w.skipPrefixed() // Signature
	if w.err != nil {
		return 0, fmt.Errorf("driverimg: encoded checksum: %w", w.err)
	}
	if w.off != len(blob) {
		return 0, fmt.Errorf("driverimg: encoded checksum: %d trailing bytes", len(blob)-w.off)
	}
	return end, nil
}

// fieldWalker advances over wire-encoded fields without materializing
// them; errors are sticky like wire.Decoder's.
type fieldWalker struct {
	buf []byte
	off int
	err error
}

func (w *fieldWalker) skip(n int) {
	if w.err != nil {
		return
	}
	if w.off+n > len(w.buf) {
		w.err = fmt.Errorf("short buffer at offset %d", w.off)
		return
	}
	w.off += n
}

// count consumes a 4-byte element count.
func (w *fieldWalker) count() uint32 {
	if w.err != nil {
		return 0
	}
	if w.off+4 > len(w.buf) {
		w.err = fmt.Errorf("short buffer at offset %d", w.off)
		return 0
	}
	n := uint32(w.buf[w.off])<<24 | uint32(w.buf[w.off+1])<<16 |
		uint32(w.buf[w.off+2])<<8 | uint32(w.buf[w.off+3])
	w.off += 4
	return n
}

// skipPrefixed consumes one length-prefixed string/byte field. The
// length is untrusted: reject anything beyond the buffer while still
// in uint32 space, so int(n) can't go negative on 32-bit platforms and
// slide the offset backwards.
func (w *fieldWalker) skipPrefixed() {
	n := w.count()
	if w.err == nil && uint64(n) > uint64(len(w.buf)) {
		w.err = fmt.Errorf("short buffer at offset %d", w.off)
		return
	}
	w.skip(int(n))
}

// Sign signs the image with the given ed25519 private key, replacing any
// existing signature.
func (img *Image) Sign(key ed25519.PrivateKey) {
	img.Signature = ed25519.Sign(key, img.canonicalBytes())
}

// Verify checks the signature against pub. Unsigned images fail
// verification.
func (img *Image) Verify(pub ed25519.PublicKey) error {
	if len(img.Signature) == 0 {
		return fmt.Errorf("driverimg: image %s is unsigned", img.Manifest.ID())
	}
	if !ed25519.Verify(pub, img.canonicalBytes(), img.Signature) {
		return fmt.Errorf("driverimg: signature verification failed for %s", img.Manifest.ID())
	}
	return nil
}
