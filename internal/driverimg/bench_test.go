package driverimg

import (
	"crypto/ed25519"
	"testing"

	"repro/internal/dbver"
)

func benchImage(payload int) *Image {
	body := make([]byte, payload)
	for i := range body {
		body[i] = byte(i)
	}
	return &Image{
		Manifest: Manifest{
			Kind:            "dbms-native",
			API:             dbver.APIOf("JDBC", 3, 0),
			Version:         dbver.V(1, 2, 3),
			ProtocolVersion: 2,
			Options:         map[string]string{"user": "app", "password": "pw"},
			Packages:        []string{"core"},
		},
		Payload: body,
	}
}

func BenchmarkImageEncode(b *testing.B) {
	img := benchImage(64 << 10)
	b.SetBytes(int64(len(img.Payload)))
	for i := 0; i < b.N; i++ {
		_ = img.Encode()
	}
}

func BenchmarkImageDecode(b *testing.B) {
	blob := benchImage(64 << 10).Encode()
	b.SetBytes(int64(len(blob)))
	for i := 0; i < b.N; i++ {
		if _, err := Decode(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSign(b *testing.B) {
	_, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		b.Fatal(err)
	}
	img := benchImage(64 << 10)
	for i := 0; i < b.N; i++ {
		img.Sign(priv)
	}
}

func BenchmarkVerify(b *testing.B) {
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		b.Fatal(err)
	}
	img := benchImage(64 << 10)
	img.Sign(priv)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := img.Verify(pub); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssemble(b *testing.B) {
	ps := NewPackageStore()
	ps.AddPackage("gis", make([]byte, 8<<10), map[string]string{"gis": "on"})
	ps.AddPackage("nls", make([]byte, 4<<10), nil)
	base := benchImage(16 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ps.Assemble(base, "gis", "nls"); err != nil {
			b.Fatal(err)
		}
	}
}
