package driverimg

import (
	"fmt"
	"sync"

	"repro/internal/client"
	"repro/internal/dbver"
)

// Factory instantiates a live client.Driver from a decoded image. Each
// driver family (the simulated DBMS's native protocol, the Sequoia
// controller protocol, ...) registers one factory under its Kind.
type Factory func(img *Image) (client.Driver, error)

// Runtime is the dynamic "code" loader: it turns driver images into live
// drivers, the stand-in for the JVM classloader in the paper's
// implementation. A Runtime holds one factory per driver kind; loading an
// image whose kind has no registered factory is the analog of a
// ClassNotFoundException.
type Runtime struct {
	mu        sync.RWMutex
	factories map[string]Factory
	loads     int
}

// NewRuntime creates an empty runtime.
func NewRuntime() *Runtime {
	return &Runtime{factories: make(map[string]Factory)}
}

// Register installs a factory for the given driver kind, replacing any
// previous registration.
func (rt *Runtime) Register(kind string, f Factory) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.factories[kind] = f
}

// Kinds returns the registered driver kinds.
func (rt *Runtime) Kinds() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]string, 0, len(rt.factories))
	for k := range rt.factories {
		out = append(out, k)
	}
	return out
}

// Loads reports how many images have been successfully instantiated;
// benchmarks use it to confirm hot-swaps happened.
func (rt *Runtime) Loads() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.loads
}

// Load instantiates a decoded image into a live driver.
func (rt *Runtime) Load(img *Image) (client.Driver, error) {
	rt.mu.RLock()
	f, ok := rt.factories[img.Manifest.Kind]
	rt.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("driverimg: no factory for driver kind %q (available: %v)",
			img.Manifest.Kind, rt.Kinds())
	}
	drv, err := f(img)
	if err != nil {
		return nil, fmt.Errorf("driverimg: instantiating %s: %w", img.Manifest.ID(), err)
	}
	rt.mu.Lock()
	rt.loads++
	rt.mu.Unlock()
	return drv, nil
}

// LoadBytes decodes and instantiates an encoded image in one step — the
// bootloader's "decode(binary_format, binary_code); load(...)" from the
// paper's Table 3.
func (rt *Runtime) LoadBytes(blob []byte) (client.Driver, *Image, error) {
	img, err := Decode(blob)
	if err != nil {
		return nil, nil, err
	}
	drv, err := rt.Load(img)
	if err != nil {
		return nil, nil, err
	}
	return drv, img, nil
}

// WrapDriver decorates an inner driver with the image's manifest-level
// behaviour: URL pinning and option defaults. Factories use it so every
// driver family gets identical manifest semantics.
func WrapDriver(inner client.Driver, img *Image) client.Driver {
	return &manifestDriver{inner: inner, man: img.Manifest.Clone()}
}

type manifestDriver struct {
	inner client.Driver
	man   Manifest
}

func (d *manifestDriver) Name() string { return d.man.Kind }

func (d *manifestDriver) Version() dbver.Version { return d.man.Version }

func (d *manifestDriver) Connect(url string, props client.Props) (client.Conn, error) {
	// Pre-configured drivers ignore the application URL entirely (paper
	// §5.2: "Whatever host name is found in the URL specified by the
	// client application, it is ignored").
	if d.man.PinnedURL != "" {
		url = d.man.PinnedURL
	}
	merged := client.Props{}
	for k, v := range d.man.Options {
		merged[k] = v
	}
	for k, v := range props {
		merged[k] = v
	}
	return d.inner.Connect(url, merged)
}
