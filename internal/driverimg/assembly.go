package driverimg

import (
	"fmt"
	"sort"
	"sync"
)

// PackageStore holds feature packages (NLS locales, GIS extensions,
// Kerberos security libraries, license keys...) from which drivers are
// assembled on demand — the paper's §5.4.1 "Assembling Drivers on
// Demand". A base image plus a set of named packages yields a customized
// image containing exactly the features a client needs.
type PackageStore struct {
	mu   sync.RWMutex
	gen  uint64
	pkgs map[string]pkg
}

type pkg struct {
	payload []byte
	options map[string]string
}

// NewPackageStore creates an empty store.
func NewPackageStore() *PackageStore {
	return &PackageStore{pkgs: make(map[string]pkg)}
}

// AddPackage registers a feature package: its payload is appended to the
// assembled image's payload and its options merged into the manifest.
func (ps *PackageStore) AddPackage(name string, payload []byte, options map[string]string) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	opts := make(map[string]string, len(options))
	for k, v := range options {
		opts[k] = v
	}
	ps.pkgs[name] = pkg{payload: append([]byte(nil), payload...), options: opts}
	ps.gen++
}

// Generation returns a counter bumped on every package mutation; caches
// of assembled images key on it so a re-registered package invalidates
// previously assembled drivers.
func (ps *PackageStore) Generation() uint64 {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	return ps.gen
}

// Packages lists registered package names, sorted.
func (ps *PackageStore) Packages() []string {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	names := make([]string, 0, len(ps.pkgs))
	for n := range ps.pkgs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Assemble builds a customized image from base plus the named packages.
// The base image is not modified. Unknown package names are an error —
// the Drivolution server reports them to the bootloader rather than
// shipping an incomplete driver.
func (ps *PackageStore) Assemble(base *Image, packages ...string) (*Image, error) {
	ps.mu.RLock()
	defer ps.mu.RUnlock()

	out := &Image{
		Manifest: base.Manifest.Clone(),
		Payload:  append([]byte(nil), base.Payload...),
	}
	sorted := append([]string(nil), packages...)
	sort.Strings(sorted)
	for _, name := range sorted {
		p, ok := ps.pkgs[name]
		if !ok {
			return nil, fmt.Errorf("driverimg: unknown package %q (available: %v)", name, ps.Packages())
		}
		if out.Manifest.HasPackage(name) {
			continue // already included in the base
		}
		out.Payload = append(out.Payload, p.payload...)
		if len(p.options) > 0 && out.Manifest.Options == nil {
			out.Manifest.Options = make(map[string]string, len(p.options))
		}
		for k, v := range p.options {
			out.Manifest.Options[k] = v
		}
		out.Manifest.Packages = append(out.Manifest.Packages, name)
	}
	sort.Strings(out.Manifest.Packages)
	// Assembly invalidates any base signature; the caller re-signs.
	out.Signature = nil
	return out, nil
}
