package driverimg

import (
	"bytes"
	"crypto/ed25519"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/client"
	"repro/internal/dbver"
)

func testManifest() Manifest {
	return Manifest{
		Kind:            "dbms-native",
		API:             dbver.APIOf("JDBC", 3, 0),
		Platform:        dbver.PlatformLinuxAMD64,
		Version:         dbver.V(1, 4, 2),
		ProtocolVersion: 3,
		PinnedURL:       "",
		Options:         map[string]string{"fetchSize": "100", "tz": "UTC"},
		Packages:        []string{"core"},
	}
}

func TestImageEncodeDecodeRoundTrip(t *testing.T) {
	img := &Image{
		Manifest: testManifest(),
		Payload:  bytes.Repeat([]byte{0xCD}, 4096),
	}
	blob := img.Encode()
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest.Kind != img.Manifest.Kind ||
		got.Manifest.API != img.Manifest.API ||
		got.Manifest.Platform != img.Manifest.Platform ||
		got.Manifest.Version != img.Manifest.Version ||
		got.Manifest.ProtocolVersion != img.Manifest.ProtocolVersion {
		t.Fatalf("manifest mismatch: %+v vs %+v", got.Manifest, img.Manifest)
	}
	if got.Manifest.Options["fetchSize"] != "100" || got.Manifest.Options["tz"] != "UTC" {
		t.Errorf("options = %v", got.Manifest.Options)
	}
	if len(got.Manifest.Packages) != 1 || got.Manifest.Packages[0] != "core" {
		t.Errorf("packages = %v", got.Manifest.Packages)
	}
	if !bytes.Equal(got.Payload, img.Payload) {
		t.Error("payload mismatch")
	}
	if got.Checksum() != img.Checksum() {
		t.Error("checksum changed across round trip")
	}
}

func TestImageDecodeGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("expected error on nil blob")
	}
	if _, err := Decode([]byte{99, 1, 2, 3}); err == nil {
		t.Fatal("expected error on bad version")
	}
	img := &Image{Manifest: testManifest()}
	blob := img.Encode()
	if _, err := Decode(blob[:len(blob)-2]); err == nil {
		t.Fatal("expected error on truncated blob")
	}
}

func TestSignVerify(t *testing.T) {
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	img := &Image{Manifest: testManifest(), Payload: []byte("driver body")}

	if err := img.Verify(pub); err == nil {
		t.Fatal("unsigned image must fail verification")
	}
	img.Sign(priv)
	if err := img.Verify(pub); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	// Signature survives encode/decode.
	got, err := Decode(img.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(pub); err != nil {
		t.Fatalf("Verify after round trip: %v", err)
	}

	// Tampering with the payload invalidates the signature.
	got.Payload[0] ^= 0xFF
	if err := got.Verify(pub); err == nil {
		t.Fatal("tampered image must fail verification")
	}

	// Tampering with the manifest invalidates the signature too.
	got2, _ := Decode(img.Encode())
	got2.Manifest.PinnedURL = "dbms://evil:1/db"
	if err := got2.Verify(pub); err == nil {
		t.Fatal("manifest-tampered image must fail verification")
	}

	// Wrong key fails.
	otherPub, _, _ := ed25519.GenerateKey(nil)
	got3, _ := Decode(img.Encode())
	if err := got3.Verify(otherPub); err == nil {
		t.Fatal("wrong key must fail verification")
	}
}

func TestChecksumIdentity(t *testing.T) {
	a := &Image{Manifest: testManifest(), Payload: []byte("x")}
	b := &Image{Manifest: testManifest(), Payload: []byte("x")}
	if a.Checksum() != b.Checksum() {
		t.Error("identical images must share a checksum")
	}
	b.Payload = []byte("y")
	if a.Checksum() == b.Checksum() {
		t.Error("different payloads must differ in checksum")
	}
	// Signature does not affect content identity.
	_, priv, _ := ed25519.GenerateKey(nil)
	c := &Image{Manifest: testManifest(), Payload: []byte("x")}
	c.Sign(priv)
	if a.Checksum() != c.Checksum() {
		t.Error("signing must not change the checksum")
	}
}

func TestManifestRoundTripProperty(t *testing.T) {
	prop := func(kind, pin string, maj, min uint8, proto uint16, payload []byte) bool {
		img := &Image{
			Manifest: Manifest{
				Kind:            kind,
				API:             dbver.APIOf("JDBC", int(maj), int(min)),
				Version:         dbver.V(int(maj), int(min), 0),
				ProtocolVersion: proto,
				PinnedURL:       pin,
			},
			Payload: payload,
		}
		got, err := Decode(img.Encode())
		if err != nil {
			return false
		}
		return got.Manifest.Kind == kind &&
			got.Manifest.PinnedURL == pin &&
			got.Manifest.ProtocolVersion == proto &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// fakeDriver records the URL/props it is asked to connect with.
type fakeDriver struct {
	name     string
	lastURL  string
	lastProp client.Props
}

func (f *fakeDriver) Name() string           { return f.name }
func (f *fakeDriver) Version() dbver.Version { return dbver.V(1, 0, 0) }
func (f *fakeDriver) Connect(url string, p client.Props) (client.Conn, error) {
	f.lastURL = url
	f.lastProp = p
	return nil, nil
}

func TestRuntimeLoad(t *testing.T) {
	rt := NewRuntime()
	fd := &fakeDriver{name: "fake"}
	rt.Register("dbms-native", func(img *Image) (client.Driver, error) {
		return WrapDriver(fd, img), nil
	})

	img := &Image{Manifest: testManifest()}
	drv, err := rt.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	if drv.Name() != "dbms-native" {
		t.Errorf("Name = %q", drv.Name())
	}
	if drv.Version() != dbver.V(1, 4, 2) {
		t.Errorf("Version = %v", drv.Version())
	}
	if rt.Loads() != 1 {
		t.Errorf("Loads = %d", rt.Loads())
	}

	// Unknown kind is the ClassNotFoundException analog.
	img2 := &Image{Manifest: Manifest{Kind: "no-such-kind"}}
	if _, err := rt.Load(img2); err == nil || !strings.Contains(err.Error(), "no factory") {
		t.Fatalf("err = %v", err)
	}
}

func TestRuntimeLoadBytes(t *testing.T) {
	rt := NewRuntime()
	rt.Register("dbms-native", func(img *Image) (client.Driver, error) {
		return WrapDriver(&fakeDriver{name: "fake"}, img), nil
	})
	img := &Image{Manifest: testManifest(), Payload: []byte("body")}
	drv, decoded, err := rt.LoadBytes(img.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if drv == nil || decoded.Checksum() != img.Checksum() {
		t.Fatal("LoadBytes did not round-trip the image")
	}
	if _, _, err := rt.LoadBytes([]byte("garbage")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestManifestDriverPinnedURLAndOptions(t *testing.T) {
	fd := &fakeDriver{name: "fake"}
	man := testManifest()
	man.PinnedURL = "dbms://master:9001/prod"
	man.Options = map[string]string{"a": "manifest", "b": "manifest"}
	drv := WrapDriver(fd, &Image{Manifest: man})

	_, err := drv.Connect("dbms://whatever:1/ignored", client.Props{"b": "app", "c": "app"})
	if err != nil {
		t.Fatal(err)
	}
	if fd.lastURL != "dbms://master:9001/prod" {
		t.Errorf("pinned URL not applied: %q", fd.lastURL)
	}
	// Application props override manifest defaults.
	if fd.lastProp["a"] != "manifest" || fd.lastProp["b"] != "app" || fd.lastProp["c"] != "app" {
		t.Errorf("props = %v", fd.lastProp)
	}
}

func TestAssembly(t *testing.T) {
	ps := NewPackageStore()
	ps.AddPackage("nls-fr", []byte("bonjour"), map[string]string{"locale": "fr"})
	ps.AddPackage("gis", []byte("geometry"), nil)
	ps.AddPackage("kerberos", []byte("tickets"), map[string]string{"auth": "krb5"})

	base := &Image{Manifest: testManifest(), Payload: []byte("base")}
	out, err := ps.Assemble(base, "gis", "nls-fr")
	if err != nil {
		t.Fatal(err)
	}
	// Sorted package order: gis, nls-fr appended after base payload.
	if want := "base" + "geometry" + "bonjour"; string(out.Payload) != want {
		t.Errorf("payload = %q, want %q", out.Payload, want)
	}
	if out.Manifest.Options["locale"] != "fr" {
		t.Errorf("options = %v", out.Manifest.Options)
	}
	if !out.Manifest.HasPackage("gis") || !out.Manifest.HasPackage("nls-fr") || !out.Manifest.HasPackage("core") {
		t.Errorf("packages = %v", out.Manifest.Packages)
	}
	// Base untouched.
	if string(base.Payload) != "base" || len(base.Manifest.Packages) != 1 {
		t.Error("Assemble mutated the base image")
	}
	// Unknown package is an error.
	if _, err := ps.Assemble(base, "no-such-pkg"); err == nil {
		t.Fatal("expected unknown-package error")
	}
	// Duplicate of an already included package is a no-op.
	out2, err := ps.Assemble(out, "gis")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out2.Payload, out.Payload) {
		t.Error("re-adding an included package must not grow the payload")
	}
}

// TestEncodedChecksumMatchesDecode: the blob-walking checksum must be
// byte-identical to the decode-then-Checksum path for every image
// shape, including signed images, empty payloads, and nil option maps.
func TestEncodedChecksumMatchesDecode(t *testing.T) {
	_, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	images := []*Image{
		{Manifest: testManifest(), Payload: bytes.Repeat([]byte{0xCD}, 4096)},
		{Manifest: Manifest{Kind: "dbms-native", API: dbver.AnyVersionAPI("ODBC")}},
		{Manifest: Manifest{Kind: "sequoia", PinnedURL: "dbms://h1,h2/prod",
			Packages: []string{"nls", "gis", "kerberos"}}},
	}
	images = append(images, &Image{Manifest: testManifest(), Payload: []byte("signed")})
	images[len(images)-1].Sign(priv)

	for i, img := range images {
		blob := img.Encode()
		got, err := EncodedChecksum(blob)
		if err != nil {
			t.Fatalf("image %d: %v", i, err)
		}
		if want := img.Checksum(); got != want {
			t.Errorf("image %d: EncodedChecksum = %s, Checksum = %s", i, got, want)
		}
	}
}

// TestEncodedChecksumRejectsGarbage: the walk validates framing like
// Decode does — corrupt blobs must error, not hash garbage.
func TestEncodedChecksumRejectsGarbage(t *testing.T) {
	if _, err := EncodedChecksum(nil); err == nil {
		t.Error("nil blob must error")
	}
	if _, err := EncodedChecksum([]byte{99}); err == nil {
		t.Error("bad version byte must error")
	}
	img := &Image{Manifest: testManifest(), Payload: []byte("body")}
	blob := img.Encode()
	if _, err := EncodedChecksum(blob[:len(blob)-3]); err == nil {
		t.Error("truncated blob must error")
	}
	if _, err := EncodedChecksum(append(blob, 0)); err == nil {
		t.Error("trailing bytes must error")
	}
}
