package drivolution

import (
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/driverimg"
	"repro/internal/sqlmini"
)

// Re-exported core types: the Drivolution server, bootloader, and their
// vocabulary. Aliases keep one implementation while giving users a
// single import.
type (
	// Server is the Drivolution Server (in-database, external, or
	// standalone depending on its Store).
	Server = core.Server
	// ServerOption configures a Server.
	ServerOption = core.ServerOption
	// Bootloader is the client-side driver interceptor.
	Bootloader = core.Bootloader
	// BootloaderOption configures a Bootloader.
	BootloaderOption = core.BootloaderOption
	// Console manages per-database drivers behind one installation
	// (Figure 3).
	Console = core.Console
	// Store is where the Drivolution schema lives.
	Store = core.Store
	// LocalStore keeps the schema in an embedded database.
	LocalStore = core.LocalStore
	// ConnStore keeps the schema in a remote legacy DBMS (Figure 2).
	ConnStore = core.ConnStore
	// ConnStoreOption configures a ConnStore (pool size etc.).
	ConnStoreOption = core.ConnStoreOption
	// ConnStoreStats is a point-in-time view of a ConnStore's pool and
	// remote-session health (borrows, redials, live remote handles).
	ConnStoreStats = core.ConnStoreStats

	// Store API v2: optional capability interfaces a Store may
	// implement (LocalStore implements all three; ConnStore implements
	// TxStore and BatchStore), plus their vocabulary. See RunAtomic,
	// ExecBatchOn, and PrepareOn for capability-detecting adapters.

	// TxStore opens transactions with atomic multi-statement semantics.
	TxStore = core.TxStore
	// Tx is one open transaction on a TxStore.
	Tx = core.Tx
	// StmtStore prepares reusable statement handles.
	StmtStore = core.StmtStore
	// Stmt is a reusable prepared-statement handle.
	Stmt = core.Stmt
	// BatchStore executes a statement list as one unit (one wire round
	// trip / one engine-lock acquisition).
	BatchStore = core.BatchStore
	// OptionalGenerationStore marks stores whose generation capability
	// is negotiated at run time (ConnStore); gate with GenerationEnabled.
	OptionalGenerationStore = core.OptionalGenerationStore
	// Statement is one SQL statement plus arguments, the batch unit.
	Statement = core.Statement
	// CountingStore counts statements/round trips crossing the storage
	// boundary (test and CI tooling).
	CountingStore = core.CountingStore
	// CountingGenerationStore is CountingStore preserving the catalog
	// fast path of generation-capable stores.
	CountingGenerationStore = core.CountingGenerationStore
	// Permission is a driver_permission row (Table 2).
	Permission = core.Permission
	// Lease is a lease-table row.
	Lease = core.Lease
	// DriverRecord is a drivers-table row (Table 1).
	DriverRecord = core.DriverRecord
	// RenewPolicy is RENEW / UPGRADE / REVOKE.
	RenewPolicy = core.RenewPolicy
	// ExpirationPolicy is AFTER_CLOSE / AFTER_COMMIT / IMMEDIATE.
	ExpirationPolicy = core.ExpirationPolicy
	// Metrics counts bootloader lifecycle events.
	Metrics = core.Metrics
	// ProtocolError is a DRIVOLUTION_ERROR.
	ProtocolError = core.ProtocolError

	// Image is a distributable driver image.
	Image = driverimg.Image
	// Manifest describes a driver build.
	Manifest = driverimg.Manifest
	// Runtime loads driver images into live drivers.
	Runtime = driverimg.Runtime
	// PackageStore assembles drivers on demand (§5.4.1).
	PackageStore = driverimg.PackageStore

	// Driver creates database connections (the JDBC analog).
	Driver = client.Driver
	// Conn is one database connection.
	Conn = client.Conn
	// StmtConn is a connection holding server-side prepared statements
	// (negotiated capability; see Feature).
	StmtConn = client.StmtConn
	// ConnStmt is one server-side prepared-statement handle.
	ConnStmt = client.ConnStmt
	// TableVersionConn probes remote per-table mutation counters in one
	// round trip (negotiated capability).
	TableVersionConn = client.TableVersionConn
	// FeatureConn reports which optional capabilities a connection's
	// session negotiated.
	FeatureConn = client.FeatureConn
	// Feature names a negotiable per-session capability.
	Feature = client.Feature
	// Props carries connection options.
	Props = client.Props
	// Pool is a bounded connection pool.
	Pool = client.Pool
)

// Negotiable session features, re-exported.
const (
	FeaturePreparedStatements = client.FeaturePreparedStatements
	FeatureTableVersions      = client.FeatureTableVersions
)

// Policy constants, re-exported with the paper's Table 2 encodings.
const (
	RenewKeep    = core.RenewKeep
	RenewUpgrade = core.RenewUpgrade
	RenewRevoke  = core.RenewRevoke

	AfterClose  = core.AfterClose
	AfterCommit = core.AfterCommit
	Immediate   = core.Immediate
)

// Constructors and helpers.
var (
	// NewServer creates a Drivolution server over a Store.
	NewServer = core.NewServer
	// NewBootloader creates a client bootloader.
	NewBootloader = core.NewBootloader
	// NewConsole creates a multi-database console (Figure 3).
	NewConsole = core.NewConsole
	// NewLocalStore wraps an embedded database as a Store.
	NewLocalStore = core.NewLocalStore
	// NewConnStore wraps a legacy driver connection as a Store.
	NewConnStore = core.NewConnStore
	// WithPoolSize bounds ConnStore's connection pool.
	WithPoolSize = core.WithPoolSize
	// RunAtomic runs a function transactionally on TxStore-capable
	// stores, best-effort elsewhere.
	RunAtomic = core.RunAtomic
	// ExecBatchOn runs a statement list through BatchStore when
	// available, sequentially otherwise.
	ExecBatchOn = core.ExecBatchOn
	// PrepareOn returns a native or Exec-backed prepared handle.
	PrepareOn = core.PrepareOn
	// GenerationEnabled reports whether a store serves live generation
	// counters (static capability AND any run-time negotiation).
	GenerationEnabled = core.GenerationEnabled
	// NewCountingStore wraps any store with boundary counters.
	NewCountingStore = core.NewCountingStore
	// NewCountingGenerationStore wraps a generation-capable store with
	// boundary counters.
	NewCountingGenerationStore = core.NewCountingGenerationStore
	// NewRuntime creates an empty driver runtime.
	NewRuntime = driverimg.NewRuntime
	// NewPackageStore creates an empty feature-package store.
	NewPackageStore = driverimg.NewPackageStore
	// NewPool creates a bounded connection pool.
	NewPool = client.NewPool
	// EnsureSchema creates the Drivolution tables (Table 1/2 + leases).
	EnsureSchema = core.EnsureSchema
	// GenerateTLSCert builds a self-signed cert + trust pool for the
	// secure transfer channel.
	GenerateTLSCert = core.GenerateTLSCert
	// NewDB creates an embedded database for LocalStore.
	NewDB = sqlmini.NewDB
)

// Bootloader options, re-exported.
var (
	WithCredentials      = core.WithCredentials
	WithTrustKey         = core.WithTrustKey
	WithTLS              = core.WithTLS
	WithPushUpdates      = core.WithPushUpdates
	WithRequiredPackages = core.WithRequiredPackages
	WithPreferredVersion = core.WithPreferredVersion
	WithPreferredFormat  = core.WithPreferredFormat
	WithRenewAhead       = core.WithRenewAhead
	WithRetryInterval    = core.WithRetryInterval
	WithDialTimeout      = core.WithDialTimeout
	WithClientID         = core.WithClientID
)

// Server options, re-exported.
var (
	WithAuth            = core.WithAuth
	WithSigningKey      = core.WithSigningKey
	WithPackages        = core.WithPackages
	WithDefaultLease    = core.WithDefaultLease
	WithDefaultPolicies = core.WithDefaultPolicies
	WithLicenseMode     = core.WithLicenseMode
	// WithLeaseJitter smears granted lease periods by a uniform ±frac,
	// de-synchronizing fleet renewal storms (§3.4.2).
	WithLeaseJitter = core.WithLeaseJitter
)

// Errors, re-exported.
var (
	// ErrNoDriverAvailable: the driver was revoked with no replacement.
	ErrNoDriverAvailable = core.ErrNoDriverAvailable
	// ErrConnRevoked: the connection was closed by a replacement policy.
	ErrConnRevoked = client.ErrConnRevoked
	// ErrProtocolMismatch: driver/server wire-protocol incompatibility.
	ErrProtocolMismatch = client.ErrProtocolMismatch
	// ErrExecOutcomeUnknown: a statement's connection died after it may
	// have reached the server; it was not retried.
	ErrExecOutcomeUnknown = core.ErrExecOutcomeUnknown
	// ErrNotSupported: a capability the connection's session did not
	// negotiate (e.g. remote prepare against a v1 server).
	ErrNotSupported = client.ErrNotSupported
	// ErrTxDone: the transaction already committed or rolled back.
	ErrTxDone = core.ErrTxDone
)
